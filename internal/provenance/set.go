package provenance

import (
	"sort"
	"sync"
)

// Set is a multiset of polynomials — "all polynomials that appear in the
// provenance-aware result of query evaluation" (§2.1). The paper's size
// measures lift point-wise: |P|_M sums monomial counts, V(P) unions variable
// sets.
//
// Each polynomial is typically tagged with the output tuple (group) it
// annotates; tags are carried for presentation and scenario reporting but do
// not affect the algorithms.
//
// A Set memoizes its compiled form: Compiled returns a cached *Compiled,
// and Add extends that cache in place (Compiled.Append) instead of
// discarding it, so the session Engine's evaluate-many workload never
// re-compiles across Adds — the cached pointer, its inverted indexes and
// its baseline vector all survive. Only when an added polynomial's
// variables outgrow the built index's vocabulary does Add fall back to
// invalidation and a full rebuild. Callers that mutate Polys or the
// polynomials in place must call InvalidateCompiled themselves.
type Set struct {
	Vocab *Vocab
	Polys []*Polynomial
	Tags  []string // Tags[i] labels Polys[i]; may be empty

	compiledMu sync.Mutex
	compiled   *Compiled
}

// NewSet returns an empty set over the given vocabulary.
func NewSet(vb *Vocab) *Set {
	if vb == nil {
		vb = NewVocab()
	}
	return &Set{Vocab: vb}
}

// Add appends a polynomial with an optional tag. An already-built compiled
// cache is extended in place in O(new terms) rather than invalidated; when
// the polynomial introduces variables beyond the capacity of the compiled
// form's inverted index, Add falls back to invalidation and the next
// Compiled call rebuilds in full. Like all Set mutation, Add must not run
// concurrently with evaluation.
func (s *Set) Add(tag string, p *Polynomial) {
	s.Polys = append(s.Polys, p)
	s.Tags = append(s.Tags, tag)
	s.compiledMu.Lock()
	if s.compiled != nil && !s.compiled.Append([]*Polynomial{p}, []string{tag}) {
		s.compiled = nil
	}
	s.compiledMu.Unlock()
}

// Compiled returns the set compiled for evaluation, building it on first
// use and caching it across mutations: Add extends the cached form in
// place, so the pointer held by a long-lived session stays valid (and keeps
// growing) instead of being replaced. Callers that need a frozen snapshot
// should call Compile instead. Compiled is safe for concurrent use with
// itself (but, like the rest of Set, not with concurrent mutation).
func (s *Set) Compiled() *Compiled {
	s.compiledMu.Lock()
	defer s.compiledMu.Unlock()
	if s.compiled == nil {
		s.compiled = s.Compile()
	}
	return s.compiled
}

// InvalidateCompiled drops the cached compiled form; the next Compiled call
// rebuilds it. Add calls this automatically — it exists for callers that
// mutate Polys, Tags, or the polynomials themselves in place.
func (s *Set) InvalidateCompiled() {
	s.compiledMu.Lock()
	s.compiled = nil
	s.compiledMu.Unlock()
}

// Len returns the number of polynomials.
func (s *Set) Len() int { return len(s.Polys) }

// Size returns |P|_M — the total number of monomials across all polynomials.
func (s *Set) Size() int {
	n := 0
	for _, p := range s.Polys {
		n += p.Size()
	}
	return n
}

// VarSet returns V(P) — the union of variable sets — as a map.
func (s *Set) VarSet() map[Var]bool {
	seen := make(map[Var]bool)
	for _, p := range s.Polys {
		for k := range p.terms {
			for _, vp := range parseKey(k) {
				seen[vp.Var] = true
			}
		}
	}
	return seen
}

// Vars returns V(P) as a sorted slice.
func (s *Set) Vars() []Var {
	set := s.VarSet()
	out := make([]Var, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Granularity returns |P|_V — the number of distinct variables.
func (s *Set) Granularity() int { return len(s.VarSet()) }

// Substitute returns P↓S applied point-wise, sharing the vocabulary and tags.
func (s *Set) Substitute(subst map[Var]Var) *Set {
	out := &Set{Vocab: s.Vocab, Polys: make([]*Polynomial, len(s.Polys)), Tags: s.Tags}
	for i, p := range s.Polys {
		out.Polys[i] = p.Substitute(subst)
	}
	return out
}

// Eval evaluates every polynomial under the valuation, returning one value
// per polynomial in order.
func (s *Set) Eval(val map[Var]float64) []float64 {
	out := make([]float64, len(s.Polys))
	for i, p := range s.Polys {
		out[i] = p.Eval(val)
	}
	return out
}

// Clone deep-copies the polynomials (the Vocab and tags are shared).
func (s *Set) Clone() *Set {
	out := &Set{Vocab: s.Vocab, Polys: make([]*Polynomial, len(s.Polys)), Tags: s.Tags}
	for i, p := range s.Polys {
		out.Polys[i] = p.Clone()
	}
	return out
}

// MaxPolySize returns the largest |P|_M of any member (0 for an empty set).
func (s *Set) MaxPolySize() int {
	max := 0
	for _, p := range s.Polys {
		if p.Size() > max {
			max = p.Size()
		}
	}
	return max
}

// MinPolySize returns the smallest |P|_M of any member (0 for an empty set).
func (s *Set) MinPolySize() int {
	if len(s.Polys) == 0 {
		return 0
	}
	min := s.Polys[0].Size()
	for _, p := range s.Polys[1:] {
		if p.Size() < min {
			min = p.Size()
		}
	}
	return min
}

// MeanPolySize returns the average |P|_M per polynomial.
func (s *Set) MeanPolySize() float64 {
	if len(s.Polys) == 0 {
		return 0
	}
	return float64(s.Size()) / float64(len(s.Polys))
}
