package provenance

// Persistence support for the compiled kernel: Dump flattens a Compiled
// into plain exported arrays (the snapshot image the durable layer writes
// to disk), and RestoreSet rebuilds a Set *with its compiled cache already
// injected* from such an image — the recovery path that never recompiles.
// A restored session therefore starts in the same steady state a live one
// reaches after its first evaluation: flat arrays, CSR inverted index and
// identity baseline all warm, Stats().Compiles still counting a single
// compilation.
//
// RestoreSet trusts nothing: every structural invariant of the arrays is
// re-validated, the baseline is recomputed and compared bit-exactly, and
// the inverted index is rebuilt and compared entry-for-entry, so a corrupt
// or hostile dump is rejected with an error instead of poisoning
// evaluation. (The durable layer's CRC catches media corruption; these
// checks catch everything a checksum cannot — a dump that was valid bytes
// but never a valid kernel.)

import (
	"fmt"
	"math"
)

// CompiledDump is the flat, exported image of a Compiled kernel. All
// slices follow the kernel's internal layout: polynomial i owns terms
// [PolyOff[i], PolyOff[i+1]), term t owns factors [FactOff[t],
// FactOff[t+1]). Baseline and the four index arrays are optional (nil =
// not built at dump time); when present they must be consistent with the
// term data, which RestoreSet verifies.
type CompiledDump struct {
	PolyOff []int32
	Coeffs  []float64
	FactOff []int32
	Vars    []Var
	Pows    []int32
	Tags    []string

	Baseline []float64

	VarTermOff   []int32
	VarPolyOff   []int32
	VarPolyIDs   []int32
	VarPolyTerms []int32
}

// NPolys returns the number of polynomials the dump describes.
func (d *CompiledDump) NPolys() int { return len(d.PolyOff) - 1 }

// DumpCompiled snapshots the compiled kernel's flat arrays. The inverted
// index and the identity baseline are forced to exist first (through their
// usual once-guarded builders, so concurrent evaluations share the
// construction); the snapshot therefore always carries both, and a
// restored kernel starts warm. DumpCompiled must not run concurrently with
// Append — the session Engine serializes the two behind its lock — but is
// safe against concurrent evaluation. (A free function because Go forbids
// new methods on the instantiated Kernel alias.)
func DumpCompiled(c *Compiled) *CompiledDump {
	c.ensureIndex()
	c.Baseline()
	return &CompiledDump{
		PolyOff:      append([]int32(nil), c.polyOff...),
		Coeffs:       append([]float64(nil), c.coeffs...),
		FactOff:      append([]int32(nil), c.factOff...),
		Vars:         append([]Var(nil), c.vars...),
		Pows:         append([]int32(nil), c.pows...),
		Tags:         append([]string(nil), c.Tags...),
		Baseline:     append([]float64(nil), c.baseline...),
		VarTermOff:   append([]int32(nil), c.varTermOff...),
		VarPolyOff:   append([]int32(nil), c.varPolyOff...),
		VarPolyIDs:   append([]int32(nil), c.varPolyIDs...),
		VarPolyTerms: append([]int32(nil), c.varPolyTerms...),
	}
}

// RestoreSet rebuilds a Set over vb from a dump, with the compiled cache
// injected so the first evaluation finds it warm instead of recompiling.
// The dump is fully validated against vb before anything is constructed;
// a dump that is structurally broken, references variables outside the
// vocabulary, or whose baseline/index sections disagree with the term data
// is rejected.
func RestoreSet(vb *Vocab, d *CompiledDump) (*Set, error) {
	if vb == nil || d == nil {
		return nil, fmt.Errorf("provenance: RestoreSet needs a vocabulary and a dump")
	}
	if err := d.validateArrays(vb); err != nil {
		return nil, err
	}

	nPolys := d.NPolys()
	c := &Compiled{
		Vocab: vb,
		Tags:  append([]string(nil), d.Tags...),
		kernelArrays: kernelArrays[float64]{
			polyOff: append([]int32(nil), d.PolyOff...),
			coeffs:  append([]float64(nil), d.Coeffs...),
			factOff: append([]int32(nil), d.FactOff...),
			vars:    append([]Var(nil), d.Vars...),
			pows:    append([]int32(nil), d.Pows...),
			allPow1: true,
		},
	}
	c.bulk, _ = any(c.carrier).(bulkKernel[float64])
	for _, p := range c.pows {
		if p != 1 {
			c.allPow1 = false
			break
		}
	}
	for _, v := range c.vars {
		if v > c.maxVar {
			c.maxVar = v
		}
	}

	// Rebuild the source polynomials from the term data. A canonical
	// polynomial has one term per distinct variable part; a size mismatch
	// after the canonicalizing rebuild means the dump held duplicate or
	// zero-coefficient terms and was never produced by Dump.
	polys := make([]*Polynomial, nPolys)
	for pi := 0; pi < nPolys; pi++ {
		p := NewPolynomial()
		for t := d.PolyOff[pi]; t < d.PolyOff[pi+1]; t++ {
			if d.Coeffs[t] == 0 {
				return nil, fmt.Errorf("provenance: dump polynomial %d has a zero-coefficient term (non-canonical)", pi)
			}
			vp := make([]VarPow, 0, d.FactOff[t+1]-d.FactOff[t])
			for f := d.FactOff[t]; f < d.FactOff[t+1]; f++ {
				vp = append(vp, VarPow{Var: d.Vars[f], Pow: d.Pows[f]})
			}
			p.AddMonomial(NewMonomialPows(d.Coeffs[t], vp...))
		}
		if p.Size() != int(d.PolyOff[pi+1]-d.PolyOff[pi]) {
			return nil, fmt.Errorf("provenance: dump polynomial %d has duplicate terms (non-canonical)", pi)
		}
		polys[pi] = p
	}

	// Rebuild the inverted index through the usual once-guarded builder and
	// compare it to the stored arrays — disagreement means the dump's term
	// data and index describe different kernels.
	if d.VarTermOff != nil || d.VarPolyOff != nil || d.VarPolyIDs != nil || d.VarPolyTerms != nil {
		c.ensureIndex()
		if !equalI32(c.varTermOff, d.VarTermOff) || !equalI32(c.varPolyOff, d.VarPolyOff) ||
			!equalI32(c.varPolyIDs, d.VarPolyIDs) || !equalI32(c.varPolyTerms, d.VarPolyTerms) {
			return nil, fmt.Errorf("provenance: dump inverted index disagrees with its term data")
		}
	}

	// Recompute the identity baseline and require it bit-exact against the
	// stored vector: the baseline doubles as a semantic checksum of the
	// whole kernel.
	if d.Baseline != nil {
		if len(d.Baseline) != nPolys {
			return nil, fmt.Errorf("provenance: dump baseline has %d entries for %d polynomials", len(d.Baseline), nPolys)
		}
		fresh := c.Baseline()
		for i := range fresh {
			if math.Float64bits(fresh[i]) != math.Float64bits(d.Baseline[i]) {
				return nil, fmt.Errorf("provenance: dump baseline[%d] = %v, recomputed %v (corrupt kernel)", i, d.Baseline[i], fresh[i])
			}
		}
	}

	s := &Set{Vocab: vb, Polys: polys, Tags: c.Tags, compiled: c}
	return s, nil
}

// validateArrays checks every structural invariant of the dump's term data
// against the vocabulary, so the kernel construction above cannot index out
// of bounds or panic.
func (d *CompiledDump) validateArrays(vb *Vocab) error {
	if len(d.PolyOff) == 0 || d.PolyOff[0] != 0 {
		return fmt.Errorf("provenance: dump PolyOff must start at 0")
	}
	nPolys := d.NPolys()
	nTerms := len(d.Coeffs)
	nFactors := len(d.Vars)
	if len(d.Tags) != nPolys {
		return fmt.Errorf("provenance: dump has %d tags for %d polynomials", len(d.Tags), nPolys)
	}
	for i := 1; i < len(d.PolyOff); i++ {
		if d.PolyOff[i] < d.PolyOff[i-1] {
			return fmt.Errorf("provenance: dump PolyOff not monotone at %d", i)
		}
	}
	if int(d.PolyOff[nPolys]) != nTerms {
		return fmt.Errorf("provenance: dump PolyOff ends at %d, want %d terms", d.PolyOff[nPolys], nTerms)
	}
	if len(d.FactOff) != nTerms+1 || d.FactOff[0] != 0 {
		return fmt.Errorf("provenance: dump FactOff must have %d entries starting at 0", nTerms+1)
	}
	for i := 1; i < len(d.FactOff); i++ {
		if d.FactOff[i] < d.FactOff[i-1] {
			return fmt.Errorf("provenance: dump FactOff not monotone at %d", i)
		}
	}
	if int(d.FactOff[nTerms]) != nFactors {
		return fmt.Errorf("provenance: dump FactOff ends at %d, want %d factors", d.FactOff[nTerms], nFactors)
	}
	if len(d.Pows) != nFactors {
		return fmt.Errorf("provenance: dump has %d exponents for %d factors", len(d.Pows), nFactors)
	}
	for i, v := range d.Vars {
		if v < 1 || int(v) > vb.Len() {
			return fmt.Errorf("provenance: dump factor %d references variable %d outside the vocabulary (size %d)", i, v, vb.Len())
		}
		if d.Pows[i] < 1 {
			return fmt.Errorf("provenance: dump factor %d has non-positive exponent %d", i, d.Pows[i])
		}
	}
	return nil
}

func equalI32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
