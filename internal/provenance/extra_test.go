package provenance

import (
	"math"
	"strings"
	"testing"
)

func TestVocabAllAndSortedNames(t *testing.T) {
	vb := NewVocab()
	vb.Vars("zeta", "alpha", "mid")
	all := vb.All()
	if len(all) != 3 || vb.Name(all[0]) != "zeta" {
		t.Errorf("All = %v", all)
	}
	sorted := vb.SortedNames()
	if strings.Join(sorted, ",") != "alpha,mid,zeta" {
		t.Errorf("SortedNames = %v", sorted)
	}
}

func TestMonomialStringRendering(t *testing.T) {
	vb := NewVocab()
	a, b := vb.Var("a"), vb.Var("b")
	m := NewMonomialPows(2.5, VarPow{a, 1}, VarPow{b, 3})
	if got := m.String(vb); got != "2.5·a·b^3" {
		t.Errorf("String = %q", got)
	}
	c := NewMonomial(7)
	if got := c.String(vb); got != "7" {
		t.Errorf("constant String = %q", got)
	}
}

func TestPolynomialCloneIsDeep(t *testing.T) {
	vb := NewVocab()
	a := vb.Var("a")
	p := FromMonomials(NewMonomial(1, a))
	q := p.Clone()
	q.AddTerm(5, a)
	if p.Coeff(a) != 1 {
		t.Errorf("Clone is shallow: original coeff %v", p.Coeff(a))
	}
	if q.Coeff(a) != 6 {
		t.Errorf("clone coeff %v", q.Coeff(a))
	}
}

func TestSetCloneIsDeep(t *testing.T) {
	vb := NewVocab()
	s := NewSet(vb)
	s.Add("x", MustParse(vb, "2·a"))
	c := s.Clone()
	c.Polys[0].AddTerm(1, vb.Var("b"))
	if s.Size() != 1 {
		t.Errorf("Set clone is shallow: size %d", s.Size())
	}
}

func TestCoeffOfMissingMonomial(t *testing.T) {
	vb := NewVocab()
	a, b := vb.Var("a"), vb.Var("b")
	p := FromMonomials(NewMonomial(2, a))
	if got := p.Coeff(b); got != 0 {
		t.Errorf("Coeff of absent monomial = %v", got)
	}
	if got := p.Coeff(); got != 0 {
		t.Errorf("Coeff of absent constant = %v", got)
	}
}

func TestEmptyPolynomialBehaviour(t *testing.T) {
	p := NewPolynomial()
	if p.Size() != 0 || p.Granularity() != 0 {
		t.Error("empty polynomial has nonzero measures")
	}
	vb := NewVocab()
	if got := p.String(vb); got != "0" {
		t.Errorf("empty String = %q", got)
	}
	if got := p.Eval(nil); got != 0 {
		t.Errorf("empty Eval = %v", got)
	}
	var zero *Polynomial
	if zero.Size() != 0 {
		t.Error("nil polynomial Size != 0")
	}
}

func TestSubstituteIdentityIsNoop(t *testing.T) {
	vb := NewVocab()
	p := MustParse(vb, "2·a·b + 3·c")
	q := p.Substitute(nil)
	if !p.Equal(q) {
		t.Error("nil substitution changed the polynomial")
	}
	a, _ := vb.Lookup("a")
	q2 := p.Substitute(map[Var]Var{a: a})
	if !p.Equal(q2) {
		t.Error("identity substitution changed the polynomial")
	}
}

func TestScaleZeroGivesZeroPolynomial(t *testing.T) {
	vb := NewVocab()
	p := MustParse(vb, "2·a + 3")
	if got := p.Scale(0).Size(); got != 0 {
		t.Errorf("Scale(0) size = %d, want 0 (terms cancel)", got)
	}
}

func TestEvalWithExplicitZero(t *testing.T) {
	vb := NewVocab()
	a, b := vb.Var("a"), vb.Var("b")
	p := FromMonomials(NewMonomial(5, a), NewMonomial(7, b))
	// Assigning 0 kills a's monomial (tuple-deletion reading).
	if got := p.Eval(map[Var]float64{a: 0}); math.Abs(got-7) > 1e-12 {
		t.Errorf("Eval with a=0: %v, want 7", got)
	}
}

func TestFormatSet(t *testing.T) {
	vb := NewVocab()
	s := NewSet(vb)
	s.Add("first", MustParse(vb, "2·a"))
	s.Add("", MustParse(vb, "3"))
	out := FormatSet(s)
	if !strings.Contains(out, "first: 2·a") {
		t.Errorf("FormatSet = %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Errorf("FormatSet lines = %d", len(lines))
	}
}

func TestParseExponentInCoefficientPosition(t *testing.T) {
	vb := NewVocab()
	p := MustParse(vb, "2·a^2·b")
	a, _ := vb.Lookup("a")
	b, _ := vb.Lookup("b")
	if got := p.Coeff(a, a, b); got != 2 {
		t.Errorf("coeff of a^2·b = %v", got)
	}
}

func TestLargeExponentEval(t *testing.T) {
	vb := NewVocab()
	a := vb.Var("a")
	p := FromMonomials(NewMonomialPows(1, VarPow{a, 10}))
	if got := p.Eval(map[Var]float64{a: 2}); got != 1024 {
		t.Errorf("a^10 at a=2 = %v", got)
	}
}
