package provenance

import (
	"encoding/binary"
	"math"
	"sort"
	"strings"
)

// Monomial is a coefficient times a product of variables with positive
// exponents. The variable list is kept sorted by Var and deduplicated into
// (Var, exponent) pairs, so two monomials over the same Vocab are equal (up
// to coefficient) exactly when their Keys are equal.
type Monomial struct {
	Coeff float64
	vars  []VarPow // sorted by Var, exponents >= 1, no duplicates
}

// VarPow is a variable raised to a positive exponent.
type VarPow struct {
	Var Var
	Pow int32
}

// NewMonomial builds a canonical monomial from a coefficient and a variable
// list (repeats accumulate into exponents). The input slice is not retained.
func NewMonomial(coeff float64, vars ...Var) Monomial {
	if len(vars) == 0 {
		return Monomial{Coeff: coeff}
	}
	vs := append([]Var(nil), vars...)
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	vp := make([]VarPow, 0, len(vs))
	for _, v := range vs {
		if n := len(vp); n > 0 && vp[n-1].Var == v {
			vp[n-1].Pow++
		} else {
			vp = append(vp, VarPow{Var: v, Pow: 1})
		}
	}
	return Monomial{Coeff: coeff, vars: vp}
}

// NewMonomialPows builds a canonical monomial from explicit (Var, Pow) pairs.
// Pairs with non-positive exponents are rejected by panic: they indicate a
// programming error, not bad data. The input slice is not retained.
func NewMonomialPows(coeff float64, pows ...VarPow) Monomial {
	vp := append([]VarPow(nil), pows...)
	sort.Slice(vp, func(i, j int) bool { return vp[i].Var < vp[j].Var })
	out := vp[:0]
	for _, p := range vp {
		if p.Pow <= 0 {
			panic("provenance: monomial exponent must be positive")
		}
		if n := len(out); n > 0 && out[n-1].Var == p.Var {
			out[n-1].Pow += p.Pow
		} else {
			out = append(out, p)
		}
	}
	return Monomial{Coeff: coeff, vars: out}
}

// Vars returns the (Var, exponent) pairs in ascending Var order. The returned
// slice is owned by the monomial and must not be modified.
func (m Monomial) Vars() []VarPow { return m.vars }

// Degree returns the total degree (sum of exponents).
func (m Monomial) Degree() int {
	d := 0
	for _, p := range m.vars {
		d += int(p.Pow)
	}
	return d
}

// NumVars returns the number of distinct variables.
func (m Monomial) NumVars() int { return len(m.vars) }

// IsConstant reports whether the monomial has no variables.
func (m Monomial) IsConstant() bool { return len(m.vars) == 0 }

// Contains reports whether v occurs in the monomial.
func (m Monomial) Contains(v Var) bool {
	i := sort.Search(len(m.vars), func(i int) bool { return m.vars[i].Var >= v })
	return i < len(m.vars) && m.vars[i].Var == v
}

// Pow returns the exponent of v in the monomial (0 if absent).
func (m Monomial) Pow(v Var) int32 {
	i := sort.Search(len(m.vars), func(i int) bool { return m.vars[i].Var >= v })
	if i < len(m.vars) && m.vars[i].Var == v {
		return m.vars[i].Pow
	}
	return 0
}

// Key returns the canonical byte key of the variable part of the monomial
// (coefficient excluded). Monomials with equal Keys merge under addition.
func (m Monomial) Key() MonomialKey { return makeKey(m.vars) }

// MonomialKey is the canonical identity of a monomial's variable part,
// suitable for use as a map key.
type MonomialKey string

// makeKey packs sorted (Var, Pow) pairs into a byte string. Pairs are
// varint-encoded with Var zig-zagged so the reserved negative Hole variable
// round-trips too.
func makeKey(vp []VarPow) MonomialKey {
	if len(vp) == 0 {
		return ""
	}
	buf := make([]byte, 0, len(vp)*3)
	var tmp [binary.MaxVarintLen64]byte
	for _, p := range vp {
		n := binary.PutVarint(tmp[:], int64(p.Var))
		buf = append(buf, tmp[:n]...)
		n = binary.PutUvarint(tmp[:], uint64(p.Pow))
		buf = append(buf, tmp[:n]...)
	}
	return MonomialKey(buf)
}

// parseKey decodes a MonomialKey back into (Var, Pow) pairs.
func parseKey(k MonomialKey) []VarPow {
	b := []byte(k)
	var out []VarPow
	for len(b) > 0 {
		v, n := binary.Varint(b)
		if n <= 0 {
			panic("provenance: corrupt monomial key")
		}
		b = b[n:]
		p, n := binary.Uvarint(b)
		if n <= 0 {
			panic("provenance: corrupt monomial key")
		}
		b = b[n:]
		out = append(out, VarPow{Var: Var(v), Pow: int32(p)})
	}
	return out
}

// substKey rewrites a key under a variable mapping, producing the canonical
// key of the substituted monomial. Variables absent from subst stay intact.
// Distinct source variables may map to the same target, in which case
// exponents accumulate.
func substKey(k MonomialKey, subst map[Var]Var) MonomialKey {
	vp := parseKey(k)
	changed := false
	for i, p := range vp {
		if t, ok := subst[p.Var]; ok && t != p.Var {
			vp[i].Var = t
			changed = true
		}
	}
	if !changed {
		return k
	}
	sort.Slice(vp, func(i, j int) bool { return vp[i].Var < vp[j].Var })
	out := vp[:0]
	for _, p := range vp {
		if n := len(out); n > 0 && out[n-1].Var == p.Var {
			out[n-1].Pow += p.Pow
		} else {
			out = append(out, p)
		}
	}
	return makeKey(out)
}

// residueKey returns the key of the monomial with variable v replaced by the
// Hole placeholder (preserving v's exponent), and ok=false when v does not
// occur. Two monomials merge when v's tree-siblings are unified exactly when
// their residue keys are equal, which is the basis of the paper's §4.1
// one-pass monomial-loss computation.
func residueKey(k MonomialKey, v Var) (MonomialKey, bool) {
	vp := parseKey(k)
	found := false
	for i, p := range vp {
		if p.Var == v {
			vp[i].Var = Hole
			found = true
			break
		}
	}
	if !found {
		return "", false
	}
	sort.Slice(vp, func(i, j int) bool { return vp[i].Var < vp[j].Var })
	return makeKey(vp), true
}

// Mul returns the product of two monomials.
func (m Monomial) Mul(o Monomial) Monomial {
	vp := make([]VarPow, 0, len(m.vars)+len(o.vars))
	i, j := 0, 0
	for i < len(m.vars) && j < len(o.vars) {
		switch {
		case m.vars[i].Var < o.vars[j].Var:
			vp = append(vp, m.vars[i])
			i++
		case m.vars[i].Var > o.vars[j].Var:
			vp = append(vp, o.vars[j])
			j++
		default:
			vp = append(vp, VarPow{Var: m.vars[i].Var, Pow: m.vars[i].Pow + o.vars[j].Pow})
			i, j = i+1, j+1
		}
	}
	vp = append(vp, m.vars[i:]...)
	vp = append(vp, o.vars[j:]...)
	return Monomial{Coeff: m.Coeff * o.Coeff, vars: vp}
}

// Eval computes the numeric value of the monomial under a valuation.
// Variables missing from the valuation default to 1 (the identity — "no
// change" in the multiplicative what-if reading).
func (m Monomial) Eval(val map[Var]float64) float64 {
	x := m.Coeff
	for _, p := range m.vars {
		v, ok := val[p.Var]
		if !ok {
			continue
		}
		switch p.Pow {
		case 1:
			x *= v
		case 2:
			x *= v * v
		default:
			x *= math.Pow(v, float64(p.Pow))
		}
	}
	return x
}

// String renders the monomial using names from vb, e.g. "220.8·p1·m1".
func (m Monomial) String(vb *Vocab) string {
	var sb strings.Builder
	sb.WriteString(trimFloat(m.Coeff))
	for _, p := range m.vars {
		sb.WriteString("·")
		if p.Var == Hole {
			sb.WriteString("◊")
		} else {
			sb.WriteString(vb.Name(p.Var))
		}
		if p.Pow > 1 {
			sb.WriteString("^")
			sb.WriteString(itoa(int(p.Pow)))
		}
	}
	return sb.String()
}
