package provenance

import (
	"math"
	"math/rand"
	"testing"
)

// randomSet builds a pseudo-random set with mixed exponents so both eval
// paths (linear and general) are exercised.
func randomSet(t testing.TB, seed int64, polys, maxTerms int, withPows bool) *Set {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	vb := NewVocab()
	var vars []Var
	for i := 0; i < 40; i++ {
		vars = append(vars, vb.Var("v"+itoa(i)))
	}
	s := NewSet(vb)
	for i := 0; i < polys; i++ {
		p := NewPolynomial()
		for j := 0; j < rng.Intn(maxTerms)+1; j++ {
			n := rng.Intn(4)
			vs := make([]Var, n)
			for k := range vs {
				vs[k] = vars[rng.Intn(len(vars))]
			}
			if withPows && rng.Intn(3) == 0 && n > 0 {
				vs = append(vs, vs[0]) // duplicate → exponent 2
			}
			p.AddTerm(float64(rng.Intn(19))-9, vs...)
		}
		s.Add("poly"+itoa(i), p)
	}
	return s
}

// TestCompiledMatchesMapEval: the compiled evaluation must agree with the
// reference map-based evaluation on random sets, for both the all-pow-1
// fast path and the general-exponent path.
func TestCompiledMatchesMapEval(t *testing.T) {
	for _, withPows := range []bool{false, true} {
		for seed := int64(1); seed <= 5; seed++ {
			s := randomSet(t, seed, 7, 12, withPows)
			c := s.Compile()
			if c.Len() != s.Len() || c.Size() != s.Size() {
				t.Fatalf("compiled len/size = %d/%d, want %d/%d", c.Len(), c.Size(), s.Len(), s.Size())
			}
			rng := rand.New(rand.NewSource(seed + 100))
			val := map[Var]float64{}
			for _, v := range s.Vars() {
				if rng.Intn(3) > 0 { // leave some unassigned → identity
					val[v] = float64(rng.Intn(16)) / 8
				}
			}
			want := s.Eval(val)
			got := c.Eval(c.Valuation(val), nil)
			if len(got) != len(want) {
				t.Fatalf("lengths %d vs %d", len(got), len(want))
			}
			for i := range got {
				if math.Abs(got[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
					t.Errorf("seed %d pows=%v poly %d: compiled %v, map %v", seed, withPows, i, got[i], want[i])
				}
			}
			// EvalMap bridge and per-polynomial access agree too.
			got2 := c.EvalMap(val)
			dense := c.Valuation(val)
			for i := range got2 {
				if got2[i] != got[i] {
					t.Errorf("EvalMap poly %d = %v, want %v", i, got2[i], got[i])
				}
				if one := c.EvalPoly(i, dense); math.Abs(one-got[i]) > 1e-12*(1+math.Abs(got[i])) {
					t.Errorf("EvalPoly(%d) = %v, want %v", i, one, got[i])
				}
			}
		}
	}
}

// TestCompiledSnapshot: mutating the source set after compiling must not
// change the compiled form.
func TestCompiledSnapshot(t *testing.T) {
	vb := NewVocab()
	s := NewSet(vb)
	p := MustParse(vb, "2·a + 3·a·b")
	s.Add("g", p)
	c := s.Compile()
	before := c.Eval(c.NewValuation(), nil)[0]
	p.AddTerm(100, vb.Var("a"))
	after := c.Eval(c.NewValuation(), nil)[0]
	if before != after {
		t.Errorf("compiled changed after source mutation: %v -> %v", before, after)
	}
	if s.Eval(map[Var]float64{})[0] == before {
		t.Error("source set should have changed")
	}
}

// TestCompiledDeterministicOrder: repeated evaluations are bit-identical
// (canonical monomial order fixes the summation order).
func TestCompiledDeterministicOrder(t *testing.T) {
	s := randomSet(t, 42, 3, 30, true)
	c := s.Compile()
	val := c.NewValuation()
	for i := range val {
		val[i] = 0.5 + float64(i%7)/8
	}
	first := append([]float64(nil), c.Eval(val, nil)...)
	for r := 0; r < 10; r++ {
		got := c.Eval(val, nil)
		for i := range got {
			if got[i] != first[i] {
				t.Fatalf("round %d poly %d: %v != %v", r, i, got[i], first[i])
			}
		}
	}
}

// TestCompiledOutReuse: passing the previous out slice back in re-uses its
// storage.
func TestCompiledOutReuse(t *testing.T) {
	s := randomSet(t, 7, 5, 5, false)
	c := s.Compile()
	val := c.NewValuation()
	out := c.Eval(val, nil)
	out2 := c.Eval(val, out)
	if &out[0] != &out2[0] {
		t.Error("Eval did not re-use the out slice")
	}
}

// TestCompiledEmpty: empty sets and constant-only polynomials compile and
// evaluate.
func TestCompiledEmpty(t *testing.T) {
	s := NewSet(nil)
	c := s.Compile()
	if got := c.Eval(c.NewValuation(), nil); len(got) != 0 {
		t.Errorf("empty set eval = %v", got)
	}
	if c.ValuationLen() != 1 {
		t.Errorf("empty ValuationLen = %d, want 1 (just the NoVar slot)", c.ValuationLen())
	}
	vb := NewVocab()
	s2 := NewSet(vb)
	p := NewPolynomial()
	p.AddTerm(5) // constant
	s2.Add("c", p)
	c2 := s2.Compile()
	if got := c2.Eval(c2.NewValuation(), nil)[0]; got != 5 {
		t.Errorf("constant poly eval = %v, want 5", got)
	}
}

// TestCompilePolynomial: the single-polynomial compile agrees with the
// polynomial's own evaluation.
func TestCompilePolynomial(t *testing.T) {
	vb := NewVocab()
	p := MustParse(vb, "220.8·p1·m1 + 240·p1·m3 + 7")
	c := p.Compile()
	val := map[Var]float64{vb.Var("m3"): 0.8}
	want := p.Eval(val)
	got := c.Eval(c.Valuation(val), nil)[0]
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("compiled poly = %v, want %v", got, want)
	}
}
