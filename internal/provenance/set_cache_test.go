package provenance

import (
	"sync"
	"testing"
)

// TestCompiledCache pins the Set-level compiled cache: Compiled returns the
// same snapshot until a mutation, Add extends that snapshot in place (the
// incremental-compile path — the pointer survives), and explicit
// invalidation still forces a rebuild.
func TestCompiledCache(t *testing.T) {
	vb := NewVocab()
	s := NewSet(vb)
	s.Add("a", MustParse(vb, "2·x + 3·y"))

	c1 := s.Compiled()
	if c2 := s.Compiled(); c2 != c1 {
		t.Fatal("Compiled rebuilt without a mutation")
	}
	if got := c1.Size(); got != 2 {
		t.Fatalf("compiled size = %d, want 2", got)
	}

	s.Add("b", MustParse(vb, "5·x"))
	c3 := s.Compiled()
	if c3 != c1 {
		t.Fatal("Add rebuilt the compiled form instead of appending in place")
	}
	if got := c3.Size(); got != 3 {
		t.Fatalf("compiled size after Add = %d, want 3", got)
	}
	if got := c3.Len(); got != 2 {
		t.Fatalf("compiled polynomials after Add = %d, want 2", got)
	}
	if got := c3.Eval(c3.NewValuation(), nil); len(got) != 2 || got[1] != 5 {
		t.Fatalf("appended polynomial evaluates to %v, want [.., 5]", got)
	}

	// A polynomial outside the built index's vocabulary falls back to the
	// full rebuild: build the index first, then add a fresh variable.
	c3.NewDeltaEval()
	s.Add("c", MustParse(vb, "7·zz"))
	c4 := s.Compiled()
	if c4 == c3 {
		t.Fatal("Add past the index vocabulary did not fall back to a rebuild")
	}
	if got := c4.Len(); got != 3 {
		t.Fatalf("compiled polynomials after fallback = %d, want 3", got)
	}

	// Explicit invalidation, for in-place mutations Add cannot see.
	s.InvalidateCompiled()
	if c5 := s.Compiled(); c5 == c4 {
		t.Fatal("Compiled not invalidated by InvalidateCompiled")
	}
}

// TestCompiledCacheNotShared checks the derived-set boundary: Substitute
// and Clone results compile independently of their source.
func TestCompiledCacheNotShared(t *testing.T) {
	vb := NewVocab()
	s := NewSet(vb)
	s.Add("a", MustParse(vb, "2·x + 3·y"))
	c := s.Compiled()

	sub := s.Substitute(map[Var]Var{vb.Var("x"): vb.Var("z")})
	if sub.Compiled() == c {
		t.Fatal("substituted set shares the source's compiled cache")
	}
	if s.Compiled() != c {
		t.Fatal("Substitute invalidated the source's cache")
	}
	if clone := s.Clone(); clone.Compiled() == c {
		t.Fatal("cloned set shares the source's compiled cache")
	}
}

// TestCompiledConcurrent exercises the cache under concurrent readers (the
// Engine's evaluation paths share it behind a read lock).
func TestCompiledConcurrent(t *testing.T) {
	vb := NewVocab()
	s := NewSet(vb)
	s.Add("a", MustParse(vb, "2·x + 3·y"))
	var wg sync.WaitGroup
	got := make([]*Compiled, 8)
	for i := range got {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = s.Compiled()
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(got); i++ {
		if got[i] != got[0] {
			t.Fatal("concurrent Compiled calls observed different snapshots")
		}
	}
}
