package provenance

import (
	"fmt"
	"math"
)

// Carrier is a commutative semiring over T together with the hooks the
// compiled kernel needs to evaluate provenance polynomials in it. The
// polynomials themselves live in N[X], the universal semiring (Green et
// al., PODS'07): evaluating one under a carrier-valued valuation is the
// unique semiring homomorphism extending that valuation, so one compiled
// form answers numeric what-ifs, boolean deletion propagation, derivation
// counting, tropical min-cost and max-min security queries alike.
type Carrier[T any] interface {
	// Zero and One are the additive and multiplicative identities.
	Zero() T
	One() T
	Add(a, b T) T
	Mul(a, b T) T
	// NAdd is the n-fold sum x + x + … + x — the multiplicity hook. A
	// monomial coefficient n means "n derivations of this shape", and a
	// carrier turns it into NAdd(n, One()) in O(1) (n·x for counting, a
	// keep/drop test for the idempotent carriers) instead of a repeated-
	// addition loop. NAdd(0, x) must be Zero.
	NAdd(n int64, x T) T
	Equal(a, b T) bool
	// FromCoeff converts an N[X] monomial coefficient into the carrier at
	// compile time. Most carriers require a natural multiplicity (see
	// NaturalCoeff) and map it through NAdd(n, One()); the float carrier
	// passes the raw coefficient through so real-valued workloads (tariffs,
	// probabilities) keep today's semantics bit for bit.
	FromCoeff(c float64) (T, error)
	// Value parses a scenario assignment — always a float64 at the API
	// surface (JSON, CLI flags) — into the carrier: keep/delete for bool,
	// a count, a cost, a clearance level. It rejects assignments that have
	// no meaning in the carrier.
	Value(x float64) (T, error)
	// Chainable reports whether chained delta bases (DeltaKernel.EvalFrom
	// against a previous scenario's answers) should be used for this
	// carrier. The float carrier's cost model is calibrated for it; the
	// idempotent and selective carriers (bool, tropical, max-min) decline
	// and fall back to identity-baseline deltas.
	Chainable() bool
}

// NaturalTolerance is how far from an integer a float coefficient may stray
// and still be accepted as a natural multiplicity. Compression's summarize
// path accumulates multiplicities in floating point and can emit
// 2.9999999999 for 3.
const NaturalTolerance = 1e-9

// NaturalCoeff converts an N[X] coefficient to its integer multiplicity,
// accepting values within NaturalTolerance of a non-negative integer.
func NaturalCoeff(c float64) (int64, error) {
	n := math.Round(c)
	if math.IsNaN(c) || math.Abs(c-n) > NaturalTolerance || n < 0 {
		return 0, fmt.Errorf("coefficient %v is not a natural multiplicity", c)
	}
	return int64(n), nil
}

// kernelArrays is the flattened term data of a compiled kernel, split out
// so a carrier's fused bulk kernel (bulkKernel) receives the hot-loop
// state through a single pointer.
type kernelArrays[T any] struct {
	polyOff []int32 // polynomial i owns terms [polyOff[i], polyOff[i+1])
	coeffs  []T     // one coefficient per term
	factOff []int32 // term t owns factors [factOff[t], factOff[t+1])
	vars    []Var   // factor variables, indexed by factOff
	pows    []int32 // factor exponents, parallel to vars

	allPow1 bool // every exponent is 1: enables the branch-free fast path
}

// bulkKernel is the optional fused-loop interface a carrier may implement
// to replace the kernel's generic evaluation loops with monomorphic ones.
// It exists for one reason: Go's gcshape stenciling dispatches the generic
// loops' Add/Mul through a dictionary, and the float64 hot path must keep
// its pre-generic codegen. The kernel detects the interface once at
// construction, so evaluation pays a single interface call per range (or
// per id list), never per term.
type bulkKernel[T any] interface {
	evalBulk(a *kernelArrays[T], lo, hi int, val, out []T)
	evalBulkIDs(a *kernelArrays[T], ids []int32, val, out []T)
}

// Float is the numeric (+,×) carrier over float64 — the paper's semiring,
// and the default throughout the Engine, the CLI and the HTTP API. It is
// the one carrier with a fused bulk kernel, so Kernel[float64, Float]
// evaluation runs the exact pre-generic loops.
type Float struct{}

// Zero returns 0.
func (Float) Zero() float64 { return 0 }

// One returns 1.
func (Float) One() float64 { return 1 }

// Add returns a + b.
func (Float) Add(a, b float64) float64 { return a + b }

// Mul returns a · b.
func (Float) Mul(a, b float64) float64 { return a * b }

// NAdd returns n · x.
func (Float) NAdd(n int64, x float64) float64 { return float64(n) * x }

// Equal is exact float equality (the kernel guarantees bit-identical
// results across its evaluation paths, so no tolerance is needed).
func (Float) Equal(a, b float64) bool { return a == b }

// FromCoeff passes the raw coefficient through: the numeric carrier admits
// real-valued multiplicities (tariffs, probabilities).
func (Float) FromCoeff(c float64) (float64, error) { return c, nil }

// Value passes the raw assignment through.
func (Float) Value(x float64) (float64, error) { return x, nil }

// Chainable reports true: the chained-delta cost model is calibrated for
// the float path.
func (Float) Chainable() bool { return true }

func (Float) evalBulk(a *kernelArrays[float64], lo, hi int, val, out []float64) {
	if a.allPow1 {
		evalLinearFloat(a, lo, hi, val, out)
	} else {
		evalGeneralFloat(a, lo, hi, val, out)
	}
}

func (Float) evalBulkIDs(a *kernelArrays[float64], ids []int32, val, out []float64) {
	if a.allPow1 {
		for _, pi := range ids {
			evalLinearFloat(a, int(pi), int(pi)+1, val, out)
		}
	} else {
		for _, pi := range ids {
			evalGeneralFloat(a, int(pi), int(pi)+1, val, out)
		}
	}
}

// evalLinearFloat is the hot path: every exponent is 1 so each factor is a
// single multiply with no branching. The factor loop is unrolled four wide
// with a small-count switch — provenance monomials have one to three factors
// almost always, so most terms finish without entering a loop at all. Every
// multiply keeps the left-to-right association of the plain loop, so results
// stay bit-identical across paths.
func evalLinearFloat(a *kernelArrays[float64], lo, hi int, val, out []float64) {
	coeffs, factOff, vars := a.coeffs, a.factOff, a.vars
	for pi := lo; pi < hi; pi++ {
		sum := 0.0
		for t := a.polyOff[pi]; t < a.polyOff[pi+1]; t++ {
			x := coeffs[t]
			f, end := factOff[t], factOff[t+1]
			for ; end-f >= 4; f += 4 {
				x = x * val[vars[f]] * val[vars[f+1]] * val[vars[f+2]] * val[vars[f+3]]
			}
			switch end - f {
			case 1:
				x *= val[vars[f]]
			case 2:
				x = x * val[vars[f]] * val[vars[f+1]]
			case 3:
				x = x * val[vars[f]] * val[vars[f+1]] * val[vars[f+2]]
			}
			sum += x
		}
		out[pi] = sum
	}
}

// evalGeneralFloat handles arbitrary positive exponents by repeated
// multiplication (exponents are small in provenance polynomials: they count
// self-joins).
func evalGeneralFloat(a *kernelArrays[float64], lo, hi int, val, out []float64) {
	for pi := lo; pi < hi; pi++ {
		sum := 0.0
		for t := a.polyOff[pi]; t < a.polyOff[pi+1]; t++ {
			x := a.coeffs[t]
			for f := a.factOff[t]; f < a.factOff[t+1]; f++ {
				v := val[a.vars[f]]
				for p := a.pows[f]; p > 0; p-- {
					x *= v
				}
			}
			sum += x
		}
		out[pi] = sum
	}
}
