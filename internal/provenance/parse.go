package provenance

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Parse parses a polynomial in the paper's notation, e.g.
//
//	220.8·p1·m1 + 240*p1*m3 + 42*v*m1^2 - 3
//
// Both "·" and "*" multiply; "^" raises a variable to an integer power; terms
// are separated by "+" or "-". Variables are interned into vb. A bare number
// is a constant monomial; a bare variable has coefficient 1.
func Parse(vb *Vocab, s string) (*Polynomial, error) {
	p := NewPolynomial()
	lex := &lexer{src: s}
	sign := 1.0
	first := true
	for {
		lex.skipSpace()
		if lex.eof() {
			if first {
				return p, nil // empty input is the zero polynomial
			}
			return nil, fmt.Errorf("provenance: trailing operator in %q", s)
		}
		m, err := parseMonomial(vb, lex)
		if err != nil {
			return nil, err
		}
		m.Coeff *= sign
		p.AddMonomial(m)
		first = false
		lex.skipSpace()
		if lex.eof() {
			return p, nil
		}
		switch c := lex.next(); c {
		case '+':
			sign = 1
		case '-':
			sign = -1
		default:
			return nil, fmt.Errorf("provenance: unexpected %q at offset %d in %q", c, lex.pos-1, s)
		}
	}
}

// MustParse is Parse that panics on error; intended for tests and examples.
func MustParse(vb *Vocab, s string) *Polynomial {
	p, err := Parse(vb, s)
	if err != nil {
		panic(err)
	}
	return p
}

func parseMonomial(vb *Vocab, lex *lexer) (Monomial, error) {
	coeff := 1.0
	sawCoeff := false
	lex.skipSpace()
	if !lex.eof() {
		switch lex.peek() {
		case '-':
			lex.next()
			coeff = -1
		case '+':
			lex.next()
		}
	}
	var pows []VarPow
	for {
		lex.skipSpace()
		if lex.eof() {
			break
		}
		c := lex.peek()
		switch {
		case c >= '0' && c <= '9' || c == '.':
			f, err := lex.number()
			if err != nil {
				return Monomial{}, err
			}
			coeff *= f
			sawCoeff = true
		case isIdentStart(c):
			name := lex.ident()
			pow := int32(1)
			lex.skipSpace()
			if !lex.eof() && lex.peek() == '^' {
				lex.next()
				lex.skipSpace()
				f, err := lex.number()
				if err != nil {
					return Monomial{}, err
				}
				if f != float64(int32(f)) || f < 1 {
					return Monomial{}, fmt.Errorf("provenance: exponent must be a positive integer, got %v", f)
				}
				pow = int32(f)
			}
			pows = append(pows, VarPow{Var: vb.Var(name), Pow: pow})
		default:
			return Monomial{}, fmt.Errorf("provenance: unexpected %q at offset %d", c, lex.pos)
		}
		lex.skipSpace()
		if lex.eof() {
			break
		}
		c = lex.peek()
		if c == '*' || c == '·' {
			lex.next()
			lex.skipSpace()
			if lex.eof() {
				return Monomial{}, fmt.Errorf("provenance: dangling multiplication at offset %d", lex.pos)
			}
			continue
		}
		break
	}
	if len(pows) == 0 && !sawCoeff {
		return Monomial{}, fmt.Errorf("provenance: empty monomial at offset %d", lex.pos)
	}
	return NewMonomialPows(coeff, pows...), nil
}

type lexer struct {
	src string
	pos int
}

func (l *lexer) eof() bool { return l.pos >= len(l.src) }

func (l *lexer) peek() rune {
	r := []rune(l.src[l.pos:])
	return r[0]
}

func (l *lexer) next() rune {
	for i, r := range l.src[l.pos:] {
		l.pos += i + runeLen(r)
		return r
	}
	return 0
}

func runeLen(r rune) int { return len(string(r)) }

func (l *lexer) skipSpace() {
	for !l.eof() {
		r := l.peek()
		if !unicode.IsSpace(r) {
			return
		}
		l.next()
	}
}

func (l *lexer) number() (float64, error) {
	start := l.pos
	for !l.eof() {
		c := l.peek()
		if c >= '0' && c <= '9' || c == '.' || c == 'e' || c == 'E' ||
			((c == '+' || c == '-') && l.pos > start && (l.src[l.pos-1] == 'e' || l.src[l.pos-1] == 'E')) {
			l.next()
			continue
		}
		break
	}
	if l.pos == start {
		return 0, fmt.Errorf("provenance: expected number at offset %d", start)
	}
	f, err := strconv.ParseFloat(l.src[start:l.pos], 64)
	if err != nil {
		return 0, fmt.Errorf("provenance: bad number %q: %w", l.src[start:l.pos], err)
	}
	return f, nil
}

func (l *lexer) ident() string {
	start := l.pos
	for !l.eof() {
		c := l.peek()
		if isIdentStart(c) || c >= '0' && c <= '9' {
			l.next()
			continue
		}
		break
	}
	return l.src[start:l.pos]
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

// FormatSet renders a whole set, one "tag: polynomial" line per member.
func FormatSet(s *Set) string {
	var sb strings.Builder
	for i, p := range s.Polys {
		tag := ""
		if i < len(s.Tags) {
			tag = s.Tags[i]
		}
		if tag != "" {
			sb.WriteString(tag)
			sb.WriteString(": ")
		}
		sb.WriteString(p.String(s.Vocab))
		sb.WriteString("\n")
	}
	return sb.String()
}
