package provenance

import (
	"math/rand"
	"testing"
)

// randomAppendPoly builds one pseudo-random polynomial over vars (possibly empty,
// possibly with exponents > 1), mirroring randomDeltaSet's term shape.
func randomAppendPoly(rng *rand.Rand, vars []Var, maxTerms int, withPows bool) *Polynomial {
	p := NewPolynomial()
	for t := rng.Intn(maxTerms + 1); t > 0; t-- {
		var vs []Var
		for n := 1 + rng.Intn(4); n > 0; n-- {
			v := vars[rng.Intn(len(vars))]
			vs = append(vs, v)
			if withPows && rng.Intn(3) == 0 {
				vs = append(vs, v) // repeat accumulates into the exponent
			}
		}
		p.AddTerm(0.25+rng.Float64(), vs...)
	}
	return p
}

// TestAppendEquivalence is the incremental-compile acceptance test: across
// seeds, exponents, empty polynomials and index/baseline warm-up states,
// evaluating an appended Compiled must be bit-identical per polynomial to a
// fresh Compile of the whole set — on the full path and on the delta path
// (whose inverted index and baseline are patched, not rebuilt).
func TestAppendEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		withPows := seed%2 == 0
		nVars := 3 + rng.Intn(16)
		s := randomDeltaSet(t, rng, nVars, 1+rng.Intn(10), 6, withPows)
		vars := s.Vocab.All()

		c := s.Compile()
		// Warm seeds append onto a built index and baseline (the patch
		// path); their new polynomials must stay inside the compiled
		// vocabulary, so restrict to variables at or below MaxVar.
		warm := seed%3 != 0
		if warm {
			var usable []Var
			for _, v := range vars {
				if v <= c.MaxVar() {
					usable = append(usable, v)
				}
			}
			if len(usable) == 0 {
				warm = false
			} else {
				vars = usable
				c.NewDeltaEval()
				c.Baseline()
			}
		}

		// Append in a few chunks, including an empty polynomial.
		var extra []*Polynomial
		var tags []string
		for i := 0; i < 3+rng.Intn(4); i++ {
			p := randomAppendPoly(rng, vars, 6, withPows)
			if i == 1 {
				p = NewPolynomial()
			}
			extra = append(extra, p)
			tags = append(tags, "x"+itoa(i))
			s.Add(tags[i], p)
		}
		for lo := 0; lo < len(extra); {
			hi := lo + 1 + rng.Intn(len(extra)-lo)
			if !c.Append(extra[lo:hi], tags[lo:hi]) {
				t.Fatalf("seed %d: Append declined within the compiled vocabulary", seed)
			}
			lo = hi
		}

		fresh := s.Compile()
		if c.Len() != fresh.Len() || c.Size() != fresh.Size() {
			t.Fatalf("seed %d: appended len/size %d/%d != fresh %d/%d",
				seed, c.Len(), c.Size(), fresh.Len(), fresh.Size())
		}

		all := s.Vars()
		if len(all) == 0 {
			continue // degenerate seed: every polynomial came up empty
		}
		delta := c.NewDeltaEval()
		counts := []int{0, 1, 1 + rng.Intn(len(all)), len(all)}
		for _, k := range counts {
			touched, val := touchedScenario(rng, fresh, all, k)
			want := fresh.Eval(val, nil)
			got := c.Eval(val, nil)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("seed %d k=%d poly %d: appended Eval %v != fresh %v (bit-identity)",
						seed, k, i, got[i], want[i])
				}
			}
			dgot := delta.Eval(touched, val, nil)
			for i := range want {
				if dgot[i] != want[i] {
					t.Fatalf("seed %d k=%d poly %d: appended EvalDelta %v != fresh Eval %v (patched index)",
						seed, k, i, dgot[i], want[i])
				}
			}
		}
	}
}

// TestAppendVocabFallback pins the rebuild fallback: once the inverted index
// is built, appending a polynomial with a variable beyond the compiled
// vocabulary is declined and leaves the receiver untouched.
func TestAppendVocabFallback(t *testing.T) {
	vb := NewVocab()
	s := NewSet(vb)
	s.Add("a", MustParse(vb, "2·x·y + 3·y"))
	c := s.Compile()
	c.NewDeltaEval()
	grown := MustParse(vb, "5·brandnew")
	if c.Append([]*Polynomial{grown}, []string{"b"}) {
		t.Fatal("Append accepted a variable beyond the indexed vocabulary")
	}
	if c.Len() != 1 || c.Size() != 2 {
		t.Fatalf("declined Append mutated the receiver: len %d size %d", c.Len(), c.Size())
	}
	// Without the index the same append succeeds and extends the valuation.
	c2 := s.Compile()
	if !c2.Append([]*Polynomial{grown}, []string{"b"}) {
		t.Fatal("Append declined with no index built")
	}
	if c2.Len() != 2 || c2.ValuationLen() != int(vb.Var("brandnew"))+1 {
		t.Fatalf("appended compiled len %d, valuation %d", c2.Len(), c2.ValuationLen())
	}
	got := c2.Eval(c2.NewValuation(), nil)
	if got[1] != 5 {
		t.Fatalf("appended polynomial = %v, want 5", got[1])
	}
}

// TestEvalFromEquivalence drives the chained-delta kernel across seeds:
// starting from a random valuation, walk a chain of random single- and
// multi-variable changes; every step's EvalFrom (seeded by the previous
// step's answers) must be bit-identical to a fresh full Eval of the new
// valuation.
func TestEvalFromEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed + 100))
		withPows := seed%2 == 1
		s := randomDeltaSet(t, rng, 3+rng.Intn(16), 1+rng.Intn(10), 6, withPows)
		c := s.Compile()
		all := s.Vars()
		if len(all) == 0 {
			continue // degenerate seed: every polynomial came up empty
		}
		delta := c.NewDeltaEval()

		val := c.NewValuation()
		prev := c.Eval(val, nil) // identity answers
		for step := 0; step < 20; step++ {
			k := 1 + rng.Intn(3)
			diff := make([]Var, 0, k)
			for i := 0; i < k; i++ {
				v := all[rng.Intn(len(all))]
				if int(v) >= len(val) {
					continue
				}
				diff = append(diff, v)
				if rng.Intn(4) == 0 {
					val[v] = 1 // back to identity: still a change from before
				} else {
					val[v] = 0.1 + 2*rng.Float64()
				}
			}
			got := delta.EvalFrom(diff, val, prev, nil)
			want := c.Eval(val, nil)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("seed %d step %d poly %d: EvalFrom %v != Eval %v (bit-identity)",
						seed, step, i, got[i], want[i])
				}
			}
			prev = got
		}
	}
}

// TestAppendTags checks Tags stay aligned through appends (answers carry
// the right labels after Add).
func TestAppendTags(t *testing.T) {
	vb := NewVocab()
	s := NewSet(vb)
	s.Add("first", MustParse(vb, "1·x"))
	c := s.Compiled()
	s.Add("second", MustParse(vb, "2·x"))
	s.Add("third", MustParse(vb, "3·x"))
	if got := s.Compiled(); got != c {
		t.Fatal("Add rebuilt instead of appending")
	}
	if len(c.Tags) != 3 || c.Tags[1] != "second" || c.Tags[2] != "third" {
		t.Fatalf("Tags after append = %v", c.Tags)
	}
}
