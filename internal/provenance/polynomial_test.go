package provenance

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVocabIntern(t *testing.T) {
	vb := NewVocab()
	a := vb.Var("a")
	b := vb.Var("b")
	if a == b {
		t.Fatalf("distinct names got same Var: %d", a)
	}
	if got := vb.Var("a"); got != a {
		t.Errorf("re-interning a: got %d want %d", got, a)
	}
	if vb.Name(a) != "a" || vb.Name(b) != "b" {
		t.Errorf("Name round-trip failed: %q %q", vb.Name(a), vb.Name(b))
	}
	if vb.Len() != 2 {
		t.Errorf("Len = %d, want 2", vb.Len())
	}
	if _, ok := vb.Lookup("zzz"); ok {
		t.Error("Lookup of unknown name reported ok")
	}
}

func TestVocabNamePanics(t *testing.T) {
	vb := NewVocab()
	defer func() {
		if recover() == nil {
			t.Error("Name(0) did not panic")
		}
	}()
	vb.Name(NoVar)
}

func TestMonomialCanonical(t *testing.T) {
	vb := NewVocab()
	a, b := vb.Var("a"), vb.Var("b")
	m1 := NewMonomial(2, b, a, a)
	m2 := NewMonomialPows(2, VarPow{a, 2}, VarPow{b, 1})
	if m1.Key() != m2.Key() {
		t.Errorf("canonical keys differ: %q vs %q", m1.Key(), m2.Key())
	}
	if m1.Degree() != 3 {
		t.Errorf("Degree = %d, want 3", m1.Degree())
	}
	if m1.NumVars() != 2 {
		t.Errorf("NumVars = %d, want 2", m1.NumVars())
	}
	if m1.Pow(a) != 2 || m1.Pow(b) != 1 {
		t.Errorf("Pow: a=%d b=%d", m1.Pow(a), m1.Pow(b))
	}
	if !m1.Contains(a) || m1.Contains(vb.Var("c")) {
		t.Error("Contains wrong")
	}
}

func TestMonomialMul(t *testing.T) {
	vb := NewVocab()
	a, b, c := vb.Var("a"), vb.Var("b"), vb.Var("c")
	m := NewMonomial(2, a, b).Mul(NewMonomial(3, b, c))
	want := NewMonomialPows(6, VarPow{a, 1}, VarPow{b, 2}, VarPow{c, 1})
	if m.Key() != want.Key() || m.Coeff != 6 {
		t.Errorf("Mul = %s, want %s", m.String(vb), want.String(vb))
	}
}

func TestMonomialEvalDefaultsToIdentity(t *testing.T) {
	vb := NewVocab()
	a, b := vb.Var("a"), vb.Var("b")
	m := NewMonomial(5, a, b)
	if got := m.Eval(map[Var]float64{a: 2}); got != 10 {
		t.Errorf("Eval with missing b = %v, want 10", got)
	}
	if got := m.Eval(nil); got != 5 {
		t.Errorf("Eval with nil valuation = %v, want 5", got)
	}
	m3 := NewMonomialPows(1, VarPow{a, 3})
	if got := m3.Eval(map[Var]float64{a: 2}); got != 8 {
		t.Errorf("Eval a^3 = %v, want 8", got)
	}
}

func TestPolynomialMerging(t *testing.T) {
	vb := NewVocab()
	a, b := vb.Var("a"), vb.Var("b")
	p := NewPolynomial()
	p.AddTerm(2, a, b)
	p.AddTerm(3, b, a) // same variable part
	p.AddTerm(1, a)
	if p.Size() != 2 {
		t.Fatalf("Size = %d, want 2", p.Size())
	}
	if got := p.Coeff(a, b); got != 5 {
		t.Errorf("Coeff(a,b) = %v, want 5", got)
	}
}

func TestPolynomialZeroCancellation(t *testing.T) {
	vb := NewVocab()
	a := vb.Var("a")
	p := NewPolynomial()
	p.AddTerm(2, a)
	p.AddTerm(-2, a)
	if p.Size() != 0 {
		t.Errorf("cancelled polynomial Size = %d, want 0", p.Size())
	}
}

func TestPolynomialVarsAndGranularity(t *testing.T) {
	vb := NewVocab()
	a, b, c := vb.Var("a"), vb.Var("b"), vb.Var("c")
	p := FromMonomials(NewMonomial(1, a, b), NewMonomial(2, b, c))
	if p.Granularity() != 3 {
		t.Errorf("Granularity = %d, want 3", p.Granularity())
	}
	vars := p.Vars()
	if len(vars) != 3 || vars[0] != a || vars[1] != b || vars[2] != c {
		t.Errorf("Vars = %v", vars)
	}
}

// TestSubstituteRunningExample reproduces Example 2: abstracting m1,m3 -> q1
// in the zip-10001 revenue polynomial.
func TestSubstituteRunningExample(t *testing.T) {
	vb := NewVocab()
	p := MustParse(vb, "220.8·p1·m1 + 240·p1·m3 + 127.4·f1·m1 + 114.45·f1·m3 + 75.9·y1·m1 + 72.5·y1·m3 + 42·v·m1 + 24.2·v·m3")
	if p.Size() != 8 {
		t.Fatalf("parsed size = %d, want 8", p.Size())
	}
	m1, _ := vb.Lookup("m1")
	m3, _ := vb.Lookup("m3")
	q1 := vb.Var("q1")
	got := p.Substitute(map[Var]Var{m1: q1, m3: q1})
	want := MustParse(vb, "460.8·p1·q1 + 241.85·f1·q1 + 148.4·y1·q1 + 66.2·v·q1")
	if got.Size() != 4 {
		t.Fatalf("abstracted size = %d, want 4", got.Size())
	}
	for _, wm := range want.Monomials() {
		var vars []Var
		for _, vp := range wm.Vars() {
			for i := int32(0); i < vp.Pow; i++ {
				vars = append(vars, vp.Var)
			}
		}
		g := got.Coeff(vars...)
		if math.Abs(g-wm.Coeff) > 1e-9 {
			t.Errorf("coefficient of %s = %v, want %v", wm.String(vb), g, wm.Coeff)
		}
	}
	// Granularity drops from 7 (p1,f1,y1,v,m1,m3 — wait, 6) to 5.
	if g := p.Granularity(); g != 6 {
		t.Errorf("original granularity = %d, want 6", g)
	}
	if g := got.Granularity(); g != 5 {
		t.Errorf("abstracted granularity = %d, want 5", g)
	}
}

func TestSubstituteExponentsDoNotMergeAcrossPowers(t *testing.T) {
	vb := NewVocab()
	a, b, g := vb.Var("a"), vb.Var("b"), vb.Var("g")
	// a^2 and b should NOT merge when both map to g (g^2 vs g^1).
	p := FromMonomials(NewMonomialPows(1, VarPow{a, 2}), NewMonomial(1, b))
	q := p.Substitute(map[Var]Var{a: g, b: g})
	if q.Size() != 2 {
		t.Errorf("size after subst = %d, want 2 (g^2 and g must stay distinct)", q.Size())
	}
	// But a^2 and b^2 should merge into 2·g^2.
	p2 := FromMonomials(NewMonomialPows(1, VarPow{a, 2}), NewMonomialPows(1, VarPow{b, 2}))
	q2 := p2.Substitute(map[Var]Var{a: g, b: g})
	if q2.Size() != 1 {
		t.Errorf("size after subst = %d, want 1", q2.Size())
	}
	if got := q2.Coeff(g, g); got != 2 {
		t.Errorf("coeff of g^2 = %v, want 2", got)
	}
}

func TestSubstituteMergesVarsWithinMonomial(t *testing.T) {
	vb := NewVocab()
	a, b, g := vb.Var("a"), vb.Var("b"), vb.Var("g")
	p := FromMonomials(NewMonomial(3, a, b))
	q := p.Substitute(map[Var]Var{a: g, b: g})
	if got := q.Coeff(g, g); got != 3 {
		t.Errorf("a·b -> g^2: coeff = %v, want 3", got)
	}
}

func TestAddMulScale(t *testing.T) {
	vb := NewVocab()
	p := MustParse(vb, "2·a + 3·b")
	q := MustParse(vb, "a + 4")
	sum := p.Add(q)
	if want := MustParse(vb, "3·a + 3·b + 4"); !sum.Equal(want) {
		t.Errorf("Add = %s", sum.String(vb))
	}
	prod := p.Mul(q)
	if want := MustParse(vb, "2·a^2 + 3·a·b + 8·a + 12·b"); !prod.Equal(want) {
		t.Errorf("Mul = %s", prod.String(vb))
	}
	sc := p.Scale(2)
	if want := MustParse(vb, "4·a + 6·b"); !sc.Equal(want) {
		t.Errorf("Scale = %s", sc.String(vb))
	}
}

func TestEvalLinearity(t *testing.T) {
	vb := NewVocab()
	a, b := vb.Var("a"), vb.Var("b")
	p := MustParse(vb, "2·a + 3·b")
	q := MustParse(vb, "a·b + 1")
	val := map[Var]float64{a: 2, b: -1}
	if got, want := p.Add(q).Eval(val), p.Eval(val)+q.Eval(val); math.Abs(got-want) > 1e-12 {
		t.Errorf("Eval(p+q) = %v, want %v", got, want)
	}
	if got, want := p.Mul(q).Eval(val), p.Eval(val)*q.Eval(val); math.Abs(got-want) > 1e-12 {
		t.Errorf("Eval(p·q) = %v, want %v", got, want)
	}
}

func TestSetMeasures(t *testing.T) {
	vb := NewVocab()
	s := NewSet(vb)
	s.Add("P1", MustParse(vb, "220.8·p1·m1 + 240·p1·m3 + 127.4·f1·m1 + 114.45·f1·m3 + 75.9·y1·m1 + 72.5·y1·m3 + 42·v·m1 + 24.2·v·m3"))
	s.Add("P2", MustParse(vb, "77.9·b1·m1 + 80.5·b1·m3 + 52.2·e·m1 + 56.5·e·m3 + 69.7·b2·m1 + 100.65·b2·m3"))
	if s.Size() != 14 {
		t.Errorf("|P|_M = %d, want 14 (Example 13)", s.Size())
	}
	if s.Granularity() != 9 {
		t.Errorf("|P|_V = %d, want 9 (p1,f1,y1,v,b1,b2,e,m1,m3)", s.Granularity())
	}
	if s.MaxPolySize() != 8 || s.MinPolySize() != 6 {
		t.Errorf("max/min poly size = %d/%d, want 8/6", s.MaxPolySize(), s.MinPolySize())
	}
	if s.MeanPolySize() != 7 {
		t.Errorf("mean poly size = %v, want 7", s.MeanPolySize())
	}
}

func TestParseErrors(t *testing.T) {
	vb := NewVocab()
	for _, bad := range []string{"+", "2·", "a ^ x", "a^0", "a b$", "2 +"} {
		if _, err := Parse(vb, bad); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		}
	}
	for _, good := range []string{"", "0", "a", "-a + b", "1.5e2·a", "a^3·b"} {
		if _, err := Parse(vb, good); err != nil {
			t.Errorf("Parse(%q) failed: %v", good, err)
		}
	}
}

func TestParsePrintRoundTrip(t *testing.T) {
	vb := NewVocab()
	p := MustParse(vb, "2·a·b + 3·c^2 - 0.5·a + 7")
	q := MustParse(vb, p.String(vb))
	if !p.Equal(q) {
		t.Errorf("round trip: %s != %s", p.String(vb), q.String(vb))
	}
}

func TestCodecRoundTrip(t *testing.T) {
	vb := NewVocab()
	s := NewSet(vb)
	s.Add("zip 10001", MustParse(vb, "220.8·p1·m1 + 240·p1·m3 - 3·v"))
	s.Add("", MustParse(vb, "77.9·b1·m1^2 + 0.125"))
	var buf testBuffer
	if err := Encode(&buf, s); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Len() != s.Len() {
		t.Fatalf("decoded %d polys, want %d", got.Len(), s.Len())
	}
	for i := range s.Polys {
		// Vocab ids are preserved because names are written in intern order.
		if !got.Polys[i].Equal(s.Polys[i]) {
			t.Errorf("poly %d: %s != %s", i, got.Polys[i].String(got.Vocab), s.Polys[i].String(vb))
		}
		if got.Tags[i] != s.Tags[i] {
			t.Errorf("tag %d: %q != %q", i, got.Tags[i], s.Tags[i])
		}
	}
	if n := EncodedSize(s); n != buf.written {
		t.Errorf("EncodedSize = %d, Encode wrote %d", n, buf.written)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	var buf testBuffer
	buf.Write([]byte("NOPE----------------"))
	if _, err := Decode(&buf); err == nil {
		t.Error("Decode of garbage succeeded")
	}
}

type testBuffer struct {
	data    []byte
	written int
}

func (b *testBuffer) Write(p []byte) (int, error) {
	b.data = append(b.data, p...)
	b.written += len(p)
	return len(p), nil
}

func (b *testBuffer) Read(p []byte) (int, error) {
	if len(b.data) == 0 {
		return 0, errEOF
	}
	n := copy(p, b.data)
	b.data = b.data[n:]
	return n, nil
}

var errEOF = eofError{}

type eofError struct{}

func (eofError) Error() string { return "EOF" }

// randomPoly builds a random polynomial over nv variables for property tests.
func randomPoly(rng *rand.Rand, vb *Vocab, nv, terms int) *Polynomial {
	vars := make([]Var, nv)
	for i := range vars {
		vars[i] = vb.Var("x" + itoa(i))
	}
	p := NewPolynomial()
	for i := 0; i < terms; i++ {
		n := rng.Intn(3) + 1
		vs := make([]Var, n)
		for j := range vs {
			vs[j] = vars[rng.Intn(nv)]
		}
		p.AddTerm(float64(rng.Intn(9)+1), vs...)
	}
	return p
}

// Property: substitution never increases |P|_M or |P|_V.
func TestQuickSubstituteShrinks(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		vb := NewVocab()
		p := randomPoly(r, vb, 6, 12)
		g := vb.Var("g")
		subst := map[Var]Var{}
		for _, v := range p.Vars() {
			if r.Intn(2) == 0 {
				subst[v] = g
			}
		}
		q := p.Substitute(subst)
		return q.Size() <= p.Size() && q.Granularity() <= p.Granularity()
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: evaluation commutes with substitution when the valuation assigns
// every group member the group value (uniform scenarios are exact, §1).
func TestQuickEvalCommutesWithUniformSubstitution(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		vb := NewVocab()
		p := randomPoly(r, vb, 5, 10)
		g := vb.Var("g")
		subst := map[Var]Var{}
		for _, v := range p.Vars() {
			if r.Intn(2) == 0 {
				subst[v] = g
			}
		}
		gval := float64(r.Intn(5)) / 2
		val := map[Var]float64{g: gval}
		valFull := map[Var]float64{}
		for _, v := range p.Vars() {
			if _, grouped := subst[v]; grouped {
				valFull[v] = gval
			} else {
				x := float64(r.Intn(7)) / 3
				valFull[v] = x
				val[v] = x
			}
		}
		a := p.Eval(valFull)
		b := p.Substitute(subst).Eval(val)
		return math.Abs(a-b) <= 1e-6*(1+math.Abs(a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: codec round-trips random sets exactly.
func TestQuickCodecRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		vb := NewVocab()
		s := NewSet(vb)
		for i := 0; i < r.Intn(4)+1; i++ {
			s.Add("t"+itoa(i), randomPoly(r, vb, 4, r.Intn(8)+1))
		}
		var buf testBuffer
		if err := Encode(&buf, s); err != nil {
			return false
		}
		got, err := Decode(&buf)
		if err != nil || got.Len() != s.Len() {
			return false
		}
		for i := range s.Polys {
			if !got.Polys[i].Equal(s.Polys[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestResidueKey(t *testing.T) {
	vb := NewVocab()
	a, b, c := vb.Var("a"), vb.Var("b"), vb.Var("c")
	m1 := NewMonomial(2, a, c)
	m2 := NewMonomial(5, b, c)
	r1, ok1 := residueKey(m1.Key(), a)
	r2, ok2 := residueKey(m2.Key(), b)
	if !ok1 || !ok2 {
		t.Fatal("residueKey reported variable missing")
	}
	if r1 != r2 {
		t.Errorf("residues of a·c (drop a) and b·c (drop b) differ: %q vs %q", r1, r2)
	}
	if _, ok := residueKey(m1.Key(), b); ok {
		t.Error("residueKey found b in a·c")
	}
	// Exponent of the dropped variable must be preserved in the residue.
	m3 := NewMonomialPows(1, VarPow{a, 2}, VarPow{c, 1})
	m4 := NewMonomialPows(1, VarPow{b, 1}, VarPow{c, 1})
	r3, _ := residueKey(m3.Key(), a)
	r4, _ := residueKey(m4.Key(), b)
	if r3 == r4 {
		t.Error("a^2·c and b·c produced equal residues; exponents must distinguish them")
	}
}
