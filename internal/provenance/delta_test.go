package provenance

import (
	"math"
	"math/rand"
	"testing"
)

// randomSet builds a pseudo-random provenance set: nPolys polynomials of up
// to maxTerms monomials over nVars variables, optionally with exponents > 1,
// plus one guaranteed-empty polynomial so the zero-size edge stays covered.
func randomDeltaSet(t testing.TB, rng *rand.Rand, nVars, nPolys, maxTerms int, withPows bool) *Set {
	t.Helper()
	vb := NewVocab()
	vars := make([]Var, nVars)
	for i := range vars {
		vars[i] = vb.Var("v" + itoa(i))
	}
	s := NewSet(vb)
	for pi := 0; pi < nPolys; pi++ {
		p := NewPolynomial()
		for t := rng.Intn(maxTerms + 1); t > 0; t-- {
			var vs []Var
			for n := 1 + rng.Intn(4); n > 0; n-- {
				v := vars[rng.Intn(nVars)]
				vs = append(vs, v)
				if withPows && rng.Intn(3) == 0 {
					vs = append(vs, v) // repeat accumulates into the exponent
				}
			}
			p.AddTerm(0.25+rng.Float64(), vs...)
		}
		s.Add("p"+itoa(pi), p)
	}
	s.Add("empty", NewPolynomial())
	return s
}

// touchedScenario picks k distinct variables and a dense valuation assigning
// them pseudo-random non-identity values.
func touchedScenario(rng *rand.Rand, c *Compiled, all []Var, k int) ([]Var, []float64) {
	val := c.NewValuation()
	perm := rng.Perm(len(all))
	touched := make([]Var, 0, k)
	for _, i := range perm[:k] {
		v := all[i]
		touched = append(touched, v)
		if int(v) < len(val) {
			val[v] = 0.1 + 2*rng.Float64()
		}
	}
	return touched, val
}

// TestEvalDeltaEquivalence asserts, across seeds and shapes, that EvalDelta,
// EvalSharded and full Eval are bit-identical per polynomial, and that all
// three agree with the map-based Set.Eval reference up to float reordering,
// for scenarios touching 0, 1, some and all variables.
func TestEvalDeltaEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		withPows := seed%2 == 0
		nVars := 3 + rng.Intn(20)
		s := randomDeltaSet(t, rng, nVars, 1+rng.Intn(12), 8, withPows)
		c := s.Compile()
		all := s.Vars()
		delta := c.NewDeltaEval()
		counts := []int{0, 1}
		if len(all) > 1 {
			counts = append(counts, 1+rng.Intn(len(all)), len(all))
		}
		for _, k := range counts {
			touched, val := touchedScenario(rng, c, all, k)
			full := c.Eval(val, nil)
			got := c.EvalDelta(touched, val, nil)
			for i := range full {
				if got[i] != full[i] {
					t.Fatalf("seed %d k=%d poly %d: EvalDelta %v != Eval %v (bit-identity)",
						seed, k, i, got[i], full[i])
				}
			}
			reused := delta.Eval(touched, val, make([]float64, 0, c.Len()))
			for i := range full {
				if reused[i] != full[i] {
					t.Fatalf("seed %d k=%d poly %d: DeltaEval.Eval %v != Eval %v",
						seed, k, i, reused[i], full[i])
				}
			}
			for _, workers := range []int{2, 4} {
				sharded := c.EvalSharded(val, nil, workers)
				for i := range full {
					if sharded[i] != full[i] {
						t.Fatalf("seed %d k=%d workers=%d poly %d: EvalSharded %v != Eval %v",
							seed, k, workers, i, sharded[i], full[i])
					}
				}
				ids, _ := delta.Affected(touched)
				shardedDelta := delta.EvalAffectedSharded(ids, val, nil, workers)
				for i := range full {
					if shardedDelta[i] != full[i] {
						t.Fatalf("seed %d k=%d workers=%d poly %d: EvalAffectedSharded %v != Eval %v",
							seed, k, workers, i, shardedDelta[i], full[i])
					}
				}
			}
			// Map-based reference: same values up to summation order.
			mval := make(map[Var]float64, len(val))
			for v, x := range val {
				mval[Var(v)] = x
			}
			ref := s.Eval(mval)
			for i := range full {
				diff := math.Abs(full[i] - ref[i])
				scale := math.Max(math.Abs(ref[i]), 1)
				if diff/scale > 1e-9 {
					t.Fatalf("seed %d k=%d poly %d: compiled %v vs map-based %v", seed, k, i, full[i], ref[i])
				}
			}
		}
	}
}

// TestBaselineMatchesIdentityEval pins the baseline cache to a fresh
// identity evaluation and checks it is shared, not recomputed.
func TestBaselineMatchesIdentityEval(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := randomDeltaSet(t, rng, 10, 6, 6, true)
	c := s.Compile()
	want := c.Eval(c.NewValuation(), nil)
	got := c.Baseline()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("baseline[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if &c.Baseline()[0] != &got[0] {
		t.Error("Baseline not cached: returned a different slice on second call")
	}
}

// TestAffectedIndex checks the inverted index against a brute-force scan.
func TestAffectedIndex(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := randomDeltaSet(t, rng, 12, 8, 6, seed == 2)
		c := s.Compile()
		d := c.NewDeltaEval()
		for _, v := range s.Vars() {
			ids, terms := d.Affected([]Var{v})
			var wantIDs []int32
			wantTerms := 0
			for pi, p := range s.Polys {
				if p.VarSet()[v] {
					wantIDs = append(wantIDs, int32(pi))
					wantTerms += p.Size()
				}
			}
			if len(ids) != len(wantIDs) {
				t.Fatalf("seed %d var %d: affected %v, want %v", seed, v, ids, wantIDs)
			}
			for i := range ids {
				if ids[i] != wantIDs[i] {
					t.Fatalf("seed %d var %d: affected %v, want %v", seed, v, ids, wantIDs)
				}
			}
			if terms != wantTerms {
				t.Fatalf("seed %d var %d: affected terms %d, want %d", seed, v, terms, wantTerms)
			}
			// TermsTouching counts the terms containing v (not the terms of
			// the affected polynomials); Residues enumerates exactly those.
			wantTouch := 0
			for _, p := range s.Polys {
				wantTouch += len(p.Residues(v))
			}
			if upper := c.TermsTouching([]Var{v}); upper != wantTouch {
				t.Fatalf("seed %d var %d: TermsTouching %d, want %d for a single variable", seed, v, upper, wantTouch)
			}
		}
		// Unknown / out-of-range variables never panic and touch nothing.
		ids, terms := d.Affected([]Var{c.MaxVar() + 5, -1})
		if len(ids) != 0 || terms != 0 {
			t.Fatalf("out-of-range vars affected %v (%d terms), want none", ids, terms)
		}
		if c.TermsTouching([]Var{c.MaxVar() + 5, -1}) != 0 {
			t.Fatal("TermsTouching counted out-of-range variables")
		}
	}
}

// TestEvalDeltaEmptySet covers the no-polynomials and no-variables edges.
func TestEvalDeltaEmptySet(t *testing.T) {
	s := NewSet(nil)
	c := s.Compile()
	if out := c.EvalDelta(nil, c.NewValuation(), nil); len(out) != 0 {
		t.Fatalf("empty set delta eval = %v, want empty", out)
	}
	s2 := NewSet(nil)
	s2.Add("const", MustParse(s2.Vocab, "3"))
	c2 := s2.Compile()
	if out := c2.EvalDelta(nil, c2.NewValuation(), nil); len(out) != 1 || out[0] != 3 {
		t.Fatalf("constant-only delta eval = %v, want [3]", out)
	}
	if out := c2.EvalSharded(c2.NewValuation(), nil, 4); len(out) != 1 || out[0] != 3 {
		t.Fatalf("constant-only sharded eval = %v, want [3]", out)
	}
}
