package provenance

import (
	"sort"
	"strconv"
	"strings"
)

// Polynomial is a sum of monomials in canonical form: at most one monomial
// per distinct variable part. The zero value is the zero polynomial.
//
// A Polynomial does not retain a Vocab; callers thread the Vocab through the
// operations that need names (printing, parsing).
type Polynomial struct {
	terms map[MonomialKey]float64
}

// NewPolynomial returns an empty (zero) polynomial.
func NewPolynomial() *Polynomial {
	return &Polynomial{terms: make(map[MonomialKey]float64)}
}

// FromMonomials builds a polynomial as the sum of the given monomials.
func FromMonomials(ms ...Monomial) *Polynomial {
	p := &Polynomial{terms: make(map[MonomialKey]float64, len(ms))}
	for _, m := range ms {
		p.AddMonomial(m)
	}
	return p
}

// AddMonomial adds a monomial into the polynomial, merging with an existing
// term with the same variable part. Terms whose coefficient becomes exactly
// zero are removed, keeping the representation canonical.
func (p *Polynomial) AddMonomial(m Monomial) {
	if p.terms == nil {
		p.terms = make(map[MonomialKey]float64)
	}
	p.addKey(m.Key(), m.Coeff)
}

// AddTerm adds coeff·Πvars without constructing an intermediate Monomial.
func (p *Polynomial) AddTerm(coeff float64, vars ...Var) {
	p.AddMonomial(NewMonomial(coeff, vars...))
}

func (p *Polynomial) addKey(k MonomialKey, coeff float64) {
	c := p.terms[k] + coeff
	if c == 0 {
		delete(p.terms, k)
	} else {
		p.terms[k] = c
	}
}

// Size returns |P|_M, the number of monomials. This is the paper's primary
// provenance-size measure.
func (p *Polynomial) Size() int {
	if p == nil {
		return 0
	}
	return len(p.terms)
}

// Vars returns V(P), the set of distinct variables, as a sorted slice.
func (p *Polynomial) Vars() []Var {
	seen := make(map[Var]bool)
	for k := range p.terms {
		for _, vp := range parseKey(k) {
			seen[vp.Var] = true
		}
	}
	out := make([]Var, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Granularity returns |P|_V, the number of distinct variables.
func (p *Polynomial) Granularity() int { return len(p.VarSet()) }

// VarSet returns the set of distinct variables as a map.
func (p *Polynomial) VarSet() map[Var]bool {
	seen := make(map[Var]bool)
	for k := range p.terms {
		for _, vp := range parseKey(k) {
			seen[vp.Var] = true
		}
	}
	return seen
}

// Monomials returns the monomials in a deterministic (key-sorted) order.
func (p *Polynomial) Monomials() []Monomial {
	keys := make([]string, 0, len(p.terms))
	for k := range p.terms {
		keys = append(keys, string(k))
	}
	sort.Strings(keys)
	out := make([]Monomial, len(keys))
	for i, k := range keys {
		out[i] = Monomial{Coeff: p.terms[MonomialKey(k)], vars: parseKey(MonomialKey(k))}
	}
	return out
}

// Coeff returns the coefficient of the monomial with the given variable part
// (0 when absent).
func (p *Polynomial) Coeff(vars ...Var) float64 {
	return p.terms[NewMonomial(1, vars...).Key()]
}

// Clone returns a deep copy.
func (p *Polynomial) Clone() *Polynomial {
	q := &Polynomial{terms: make(map[MonomialKey]float64, len(p.terms))}
	for k, c := range p.terms {
		q.terms[k] = c
	}
	return q
}

// Add returns p + q as a new polynomial.
func (p *Polynomial) Add(q *Polynomial) *Polynomial {
	out := p.Clone()
	for k, c := range q.terms {
		out.addKey(k, c)
	}
	return out
}

// Mul returns p · q as a new polynomial.
func (p *Polynomial) Mul(q *Polynomial) *Polynomial {
	out := NewPolynomial()
	pm := p.Monomials()
	qm := q.Monomials()
	for _, a := range pm {
		for _, b := range qm {
			out.AddMonomial(a.Mul(b))
		}
	}
	return out
}

// Scale returns c · p as a new polynomial.
func (p *Polynomial) Scale(c float64) *Polynomial {
	out := NewPolynomial()
	for k, x := range p.terms {
		out.addKey(k, x*c)
	}
	return out
}

// Substitute returns P↓S for the variable mapping subst (leaf variable →
// abstracting meta-variable). Variables absent from subst stay intact.
// Monomials that become identical merge, summing coefficients; this is
// exactly the paper's abstraction semantics (Example 2).
func (p *Polynomial) Substitute(subst map[Var]Var) *Polynomial {
	out := &Polynomial{terms: make(map[MonomialKey]float64, len(p.terms))}
	for k, c := range p.terms {
		out.addKey(substKey(k, subst), c)
	}
	return out
}

// Residues returns the residue keys — each monomial containing v with v
// replaced by the Hole placeholder — of every monomial of p that contains v.
// Residues are the basis of the paper's §4.1 one-pass monomial-loss
// computation: when a group of variables is unified, two monomials merge
// exactly when their residues (w.r.t. their respective group members) are
// equal. Since p is canonical, residues for a fixed v are pairwise distinct,
// so len(Residues(v)) is also the number of monomials containing v.
func (p *Polynomial) Residues(v Var) []MonomialKey {
	var out []MonomialKey
	for k := range p.terms {
		if r, ok := residueKey(k, v); ok {
			out = append(out, r)
		}
	}
	return out
}

// VisitResidues calls fn(v, residue) for every monomial of p and every
// variable v ∈ vars the monomial contains, in a single pass over the
// polynomial — the §4.1 construction of the per-leaf residue tables D_P.
// Visiting order is unspecified.
func (p *Polynomial) VisitResidues(vars map[Var]bool, fn func(Var, MonomialKey)) {
	for k := range p.terms {
		vp := parseKey(k)
		for _, x := range vp {
			if !vars[x.Var] {
				continue
			}
			if r, ok := residueKey(k, x.Var); ok {
				fn(x.Var, r)
			}
		}
	}
}

// Eval computes the numeric value of the polynomial under a valuation.
// Variables missing from the valuation default to 1.
func (p *Polynomial) Eval(val map[Var]float64) float64 {
	sum := 0.0
	for k, c := range p.terms {
		m := Monomial{Coeff: c, vars: parseKey(k)}
		sum += m.Eval(val)
	}
	return sum
}

// Equal reports exact structural equality (same monomials, same
// coefficients).
func (p *Polynomial) Equal(q *Polynomial) bool {
	if p.Size() != q.Size() {
		return false
	}
	for k, c := range p.terms {
		if q.terms[k] != c {
			return false
		}
	}
	return true
}

// String renders the polynomial deterministically using names from vb,
// e.g. "220.8·p1·m1 + 240·p1·m3".
func (p *Polynomial) String(vb *Vocab) string {
	ms := p.Monomials()
	if len(ms) == 0 {
		return "0"
	}
	parts := make([]string, len(ms))
	for i, m := range ms {
		parts[i] = m.String(vb)
	}
	return strings.Join(parts, " + ")
}

// trimFloat formats a float compactly ("240" not "240.000000").
func trimFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

func itoa(i int) string { return strconv.Itoa(i) }
