package provenance

// Delta-aware evaluation: a typical hypothetical scenario touches a handful
// of variables, yet full Eval re-multiplies every monomial. The compiler
// therefore builds an inverted index (variable → terms, variable → affected
// polynomials) and caches the answer vector under the identity valuation;
// EvalDelta recomputes only the polynomials a scenario's assignments can
// affect and copies baseline values for the rest — sub-linear in |P|_M per
// scenario when scenarios are sparse, and bit-identical to Eval per
// polynomial, since affected polynomials are recomputed whole on the same
// code path (summation order per polynomial never changes). The index, the
// baseline and the epoch-marked scratch are carrier-agnostic: the same
// machinery answers boolean, counting, tropical and max-min deltas.
//
// For the opposite extreme — one huge scenario on a many-core machine —
// EvalSharded and DeltaKernel.EvalAffectedSharded split the polynomial
// range across a goroutine pool, so a single-scenario evaluation on a
// million-monomial set is no longer pinned to one core.

import (
	"slices"
	"sort"
	"sync"
)

// ensureIndex builds the inverted index on first delta use (NewDeltaEval,
// TermsTouching, MinAffectedTerms); compile-only callers never pay for it,
// and concurrent evaluation workers race-safely share one construction.
func (c *Kernel[T, C]) ensureIndex() {
	c.indexOnce.Do(c.buildDeltaIndex)
}

// buildDeltaIndex constructs the CSR inverted index over the flattened
// term data. Term ids are filled in term order, so every per-variable id
// list is ascending; the polynomial index is derived from the (transient)
// term index by collapsing runs of terms belonging to the same polynomial.
// Only the per-variable term counts survive as varTermOff — routing needs
// the polynomial lists, not the term lists.
func (c *Kernel[T, C]) buildDeltaIndex() {
	nVars := 0
	if len(c.vars) > 0 {
		nVars = int(c.maxVar) + 1
	}
	termOff := make([]int32, nVars+1)
	for _, v := range c.vars {
		termOff[v+1]++
	}
	for v := 1; v <= nVars; v++ {
		termOff[v] += termOff[v-1]
	}
	termIDs := make([]int32, len(c.vars))
	next := append([]int32(nil), termOff[:nVars]...)
	for t := range c.coeffs {
		for f := c.factOff[t]; f < c.factOff[t+1]; f++ {
			v := c.vars[f]
			termIDs[next[v]] = int32(t)
			next[v]++
		}
	}
	c.varTermOff = termOff

	termPoly := make([]int32, len(c.coeffs))
	for pi := 0; pi < c.Len(); pi++ {
		for t := c.polyOff[pi]; t < c.polyOff[pi+1]; t++ {
			termPoly[t] = int32(pi)
		}
	}
	polyOff := make([]int32, nVars+1)
	polyIDs := make([]int32, 0, len(termIDs)/2)
	polyTerms := make([]int32, nVars)
	for v := 0; v < nVars; v++ {
		polyOff[v] = int32(len(polyIDs))
		last := int32(-1)
		for _, t := range termIDs[termOff[v]:termOff[v+1]] {
			if pi := termPoly[t]; pi != last {
				polyIDs = append(polyIDs, pi)
				polyTerms[v] += c.polyOff[pi+1] - c.polyOff[pi]
				last = pi
			}
		}
	}
	polyOff[nVars] = int32(len(polyIDs))
	c.varPolyOff, c.varPolyIDs, c.varPolyTerms = polyOff, polyIDs, polyTerms
}

// patchIndex extends an already-built inverted index to cover polynomials
// appended after the build (Append): per-variable term counts are
// re-accumulated, and each new polynomial's id is appended to the id list
// of every variable it contains — new ids are all larger than the existing
// ones, so every per-variable list stays ascending with a single merge-copy
// pass. Cost is O(existing ids + new terms + |vocab|), a memmove-dominated
// fraction of a full recompile. Append guarantees the new polynomials stay
// within the indexed vocabulary.
func (c *Kernel[T, C]) patchIndex(firstPoly, firstTerm int) {
	nVars := len(c.varTermOff) - 1

	newTermCount := make([]int32, nVars)
	for f := c.factOff[firstTerm]; f < int32(len(c.vars)); f++ {
		newTermCount[c.vars[f]]++
	}
	termOff := make([]int32, nVars+1)
	for v := 0; v < nVars; v++ {
		termOff[v+1] = termOff[v] + (c.varTermOff[v+1] - c.varTermOff[v]) + newTermCount[v]
	}

	// Count the distinct (variable, new polynomial) pairs so the merged id
	// arrays can be sized exactly; mark deduplicates within one polynomial.
	mark := make([]int32, nVars)
	for v := range mark {
		mark[v] = -1
	}
	newPolyCount := make([]int32, nVars)
	for pi := firstPoly; pi < c.Len(); pi++ {
		for t := c.polyOff[pi]; t < c.polyOff[pi+1]; t++ {
			for f := c.factOff[t]; f < c.factOff[t+1]; f++ {
				if v := c.vars[f]; mark[v] != int32(pi) {
					mark[v] = int32(pi)
					newPolyCount[v]++
				}
			}
		}
	}

	oldOff, oldIDs := c.varPolyOff, c.varPolyIDs
	mergedOff := make([]int32, nVars+1)
	for v := 0; v < nVars; v++ {
		mergedOff[v+1] = mergedOff[v] + (oldOff[v+1] - oldOff[v]) + newPolyCount[v]
	}
	mergedIDs := make([]int32, mergedOff[nVars])
	next := make([]int32, nVars)
	for v := 0; v < nVars; v++ {
		n := copy(mergedIDs[mergedOff[v]:], oldIDs[oldOff[v]:oldOff[v+1]])
		next[v] = mergedOff[v] + int32(n)
		mark[v] = -1
	}
	for pi := firstPoly; pi < c.Len(); pi++ {
		terms := c.polyOff[pi+1] - c.polyOff[pi]
		for t := c.polyOff[pi]; t < c.polyOff[pi+1]; t++ {
			for f := c.factOff[t]; f < c.factOff[t+1]; f++ {
				if v := c.vars[f]; mark[v] != int32(pi) {
					mark[v] = int32(pi)
					mergedIDs[next[v]] = int32(pi)
					next[v]++
					c.varPolyTerms[v] += terms
				}
			}
		}
	}
	c.varTermOff, c.varPolyOff, c.varPolyIDs = termOff, mergedOff, mergedIDs
}

// Baseline returns the answer vector under the identity valuation (every
// variable One), computed once and cached. The slice is shared: callers
// must not mutate it.
func (c *Kernel[T, C]) Baseline() []T {
	c.baselineOnce.Do(func() {
		c.baseline = c.Eval(c.NewValuation(), nil)
		c.baselineDone = true // lets Append patch instead of recompute
	})
	return c.baseline
}

// TermsTouching returns an upper bound on the number of terms containing any
// of the touched variables (terms shared by several touched variables are
// counted once per variable). It costs O(len(touched)).
func (c *Kernel[T, C]) TermsTouching(touched []Var) int {
	c.ensureIndex()
	n := 0
	for _, v := range touched {
		if v < 0 || int(v)+1 >= len(c.varTermOff) {
			continue
		}
		n += int(c.varTermOff[v+1] - c.varTermOff[v])
	}
	return n
}

// MinAffectedTerms returns a lower bound on the number of terms a delta
// evaluation touching these variables would recompute: the affected set
// contains every polynomial of every touched variable, so it owns at least
// the largest single variable's polynomial-term total. It costs
// O(len(touched)) and is the cheap density pre-reject — when even the lower
// bound exceeds the delta cutoff, the full Affected walk can be skipped.
func (c *Kernel[T, C]) MinAffectedTerms(touched []Var) int {
	c.ensureIndex()
	n := int32(0)
	for _, v := range touched {
		if v < 0 || int(v) >= len(c.varPolyTerms) {
			continue
		}
		if t := c.varPolyTerms[v]; t > n {
			n = t
		}
	}
	return int(n)
}

// DeltaKernel is reusable scratch state for delta evaluation: an
// epoch-marked visited set and the gathered affected-polynomial list. A
// DeltaKernel is not safe for concurrent use; batch evaluators keep one per
// worker. For one-shot calls use Kernel.EvalDelta, which pools the scratch.
type DeltaKernel[T any, C Carrier[T]] struct {
	c     *Kernel[T, C]
	mark  []uint32
	epoch uint32
	ids   []int32
}

// DeltaEval is the float64 instantiation of the delta scratch, matching
// Compiled.
type DeltaEval = DeltaKernel[float64, Float]

// NewDeltaEval returns fresh delta-evaluation scratch for the compiled set,
// building the inverted index on first use.
func (c *Kernel[T, C]) NewDeltaEval() *DeltaKernel[T, C] {
	c.ensureIndex()
	return &DeltaKernel[T, C]{c: c, mark: make([]uint32, c.Len())}
}

// Affected gathers the ids of every polynomial containing at least one
// touched variable, ascending, along with the total number of terms those
// polynomials own (the exact amount of multiply work a delta evaluation
// would redo). The returned slice is valid until the next Affected or Eval
// call on this DeltaKernel.
func (d *DeltaKernel[T, C]) Affected(touched []Var) ([]int32, int) {
	c := d.c
	if len(d.mark) < c.Len() {
		// The compiled set grew underneath pooled scratch (Append): the new
		// polynomial ids need mark slots; zero entries are never current.
		d.mark = append(d.mark, make([]uint32, c.Len()-len(d.mark))...)
	}
	d.epoch++
	if d.epoch == 0 { // wrapped: every mark looks current, so reset
		for i := range d.mark {
			d.mark[i] = 0
		}
		d.epoch = 1
	}
	d.ids = d.ids[:0]
	terms := 0
	for _, v := range touched {
		if v < 0 || int(v)+1 >= len(c.varPolyOff) {
			continue
		}
		for _, pi := range c.varPolyIDs[c.varPolyOff[v]:c.varPolyOff[v+1]] {
			if d.mark[pi] != d.epoch {
				d.mark[pi] = d.epoch
				d.ids = append(d.ids, pi)
				terms += int(c.polyOff[pi+1] - c.polyOff[pi])
			}
		}
	}
	slices.Sort(d.ids) // generic sort: no per-call closure allocation
	return d.ids, terms
}

// EvalAffected writes the baseline answers into out and recomputes exactly
// the listed polynomials under val. The contract mirrors EvalDelta: val must
// be the identity everywhere except on variables whose polynomials are all
// listed in ids (Affected of the touched variables guarantees that).
func (d *DeltaKernel[T, C]) EvalAffected(ids []int32, val, out []T) []T {
	c := d.c
	n := c.Len()
	if cap(out) < n {
		out = make([]T, n)
	}
	out = out[:n]
	copy(out, c.Baseline())
	c.evalIDs(ids, val, out)
	return out
}

// EvalAffectedSharded is EvalAffected with the recomputation of the listed
// polynomials split across a pool of workers goroutines, balanced by term
// count — the intra-scenario parallel path for a single scenario whose
// affected set is large.
func (d *DeltaKernel[T, C]) EvalAffectedSharded(ids []int32, val, out []T, workers int) []T {
	c := d.c
	n := c.Len()
	if cap(out) < n {
		out = make([]T, n)
	}
	out = out[:n]
	copy(out, c.Baseline())
	if workers > len(ids) {
		workers = len(ids)
	}
	if workers <= 1 {
		c.evalIDs(ids, val, out)
		return out
	}
	total := 0
	for _, pi := range ids {
		total += int(c.polyOff[pi+1] - c.polyOff[pi])
	}
	var wg sync.WaitGroup
	start, acc, w := 0, 0, 0
	for i, pi := range ids {
		acc += int(c.polyOff[pi+1] - c.polyOff[pi])
		if acc >= total*(w+1)/workers || i == len(ids)-1 {
			chunk := ids[start : i+1]
			wg.Add(1)
			go func() {
				defer wg.Done()
				c.evalIDs(chunk, val, out)
			}()
			start, w = i+1, w+1
			if start == len(ids) {
				break
			}
		}
	}
	wg.Wait()
	return out
}

// Eval is Affected + EvalAffected: the one-call delta evaluation against
// this scratch state.
func (d *DeltaKernel[T, C]) Eval(touched []Var, val, out []T) []T {
	ids, _ := d.Affected(touched)
	return d.EvalAffected(ids, val, out)
}

// EvalAffectedFrom is the chained-delta kernel: prevOut holds the answers
// under some previous valuation, and val differs from that valuation only on
// variables whose affected polynomials are all listed in ids (Affected of
// the symmetric difference guarantees that). Every unlisted polynomial's
// value is unchanged — it contains no differing variable — so it is copied
// from prevOut rather than from the identity baseline; the listed ones are
// recomputed whole under val on the usual code path, keeping every answer
// bit-identical to a full Eval. out must not alias prevOut when ids is
// non-empty.
func (d *DeltaKernel[T, C]) EvalAffectedFrom(ids []int32, val, prevOut, out []T) []T {
	c := d.c
	n := c.Len()
	if cap(out) < n {
		out = make([]T, n)
	}
	out = out[:n]
	copy(out, prevOut)
	c.evalIDs(ids, val, out)
	return out
}

// EvalFrom evaluates under val given a previous result prevOut, where
// touched lists the variables whose value differs between the two
// valuations (the symmetric difference of two consecutive scenarios, with
// equal assignments cancelled). It is Affected + EvalAffectedFrom — the
// convenience form of the chained-delta path for correlated scenario
// streams, where consecutive valuations differ on far fewer variables than
// either differs from the identity. Callers choosing a chain base per
// carrier should consult Carrier.Chainable; the kernel itself is correct
// for any carrier, since listed polynomials are recomputed whole.
func (d *DeltaKernel[T, C]) EvalFrom(touched []Var, val, prevOut, out []T) []T {
	ids, _ := d.Affected(touched)
	return d.EvalAffectedFrom(ids, val, prevOut, out)
}

// evalIDs recomputes the listed polynomials into out. IDs must be distinct
// (concurrent shards rely on writes being disjoint).
func (c *Kernel[T, C]) evalIDs(ids []int32, val, out []T) {
	if c.bulk != nil {
		c.bulk.evalBulkIDs(&c.kernelArrays, ids, val, out)
		return
	}
	for _, pi := range ids {
		c.evalRange(int(pi), int(pi)+1, val, out)
	}
}

// GetDeltaEval returns delta-evaluation scratch from the compiled set's
// pool (freshly built when the pool is empty). Return it with PutDeltaEval
// when done; batch evaluators use the pair to keep steady-state requests
// free of the O(polynomials) mark-array allocation.
func (c *Kernel[T, C]) GetDeltaEval() *DeltaKernel[T, C] {
	d, _ := c.deltaPool.Get().(*DeltaKernel[T, C])
	if d == nil {
		d = c.NewDeltaEval()
	}
	return d
}

// PutDeltaEval returns scratch obtained from GetDeltaEval to the pool. The
// scratch must not be used after Put.
func (c *Kernel[T, C]) PutDeltaEval(d *DeltaKernel[T, C]) {
	c.deltaPool.Put(d)
}

// EvalDelta evaluates under a sparse scenario: touched lists the variables
// whose value in val differs from the identity One (listing extra variables
// is harmless). Only polynomials containing a touched variable are
// recomputed; the rest receive the cached Baseline value. Per polynomial the
// result is bit-identical to Eval, which recomputes everything.
//
// EvalDelta is safe for concurrent use with distinct out slices; its scratch
// state is pooled. Callers with a per-worker evaluation loop should hold
// their own NewDeltaEval (or a GetDeltaEval/PutDeltaEval pair) instead.
func (c *Kernel[T, C]) EvalDelta(touched []Var, val, out []T) []T {
	d := c.GetDeltaEval()
	out = d.Eval(touched, val, out)
	c.PutDeltaEval(d)
	return out
}

// EvalSharded is Eval with the polynomial range split across a pool of
// workers goroutines (1 or less falls back to the serial loop). Shard
// boundaries are balanced by term count, and each polynomial is computed
// whole by one goroutine, so results are bit-identical to Eval.
func (c *Kernel[T, C]) EvalSharded(val, out []T, workers int) []T {
	n := c.Len()
	if cap(out) < n {
		out = make([]T, n)
	}
	out = out[:n]
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		c.evalRange(0, n, val, out)
		return out
	}
	var wg sync.WaitGroup
	lo := 0
	for w := 1; w <= workers && lo < n; w++ {
		hi := n
		if w < workers {
			// First polynomial boundary at or past this worker's share of
			// the terms; polyOff is the cumulative term histogram.
			target := int32(len(c.coeffs) * w / workers)
			hi = sort.Search(n, func(i int) bool { return c.polyOff[i+1] > target })
			if hi < lo {
				hi = lo
			}
		}
		if hi > lo {
			lo, hi := lo, hi
			wg.Add(1)
			go func() {
				defer wg.Done()
				c.evalRange(lo, hi, val, out)
			}()
		}
		lo = hi
	}
	wg.Wait()
	return out
}
