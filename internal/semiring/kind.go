package semiring

import "fmt"

// Kind names one of the wire-selectable evaluation carriers — the value of
// the "semiring" field on /v1 what-if requests, the -semiring CLI flag, and
// the key of the per-semiring counters in session stats. The zero value ""
// is not a Kind; parse user input with ParseKind (which maps "" to
// KindFloat, today's default).
type Kind string

const (
	// KindFloat is the numeric (+,×) carrier over float64 — the default,
	// byte-compatible with the pre-semiring API.
	KindFloat Kind = "float"
	// KindBool is boolean deletion propagation: assign 0 to delete a tuple
	// and any answer still derivable evaluates to true.
	KindBool Kind = "bool"
	// KindCount is derivation counting: assignments are tuple
	// multiplicities, answers count derivations.
	KindCount Kind = "count"
	// KindTropical is min-plus cost: assignments are tuple costs, answers
	// are the cheapest derivation's total.
	KindTropical Kind = "tropical"
	// KindMinMax is max-min access control: assignments are clearance
	// levels, answers the highest level at which the tuple is derivable.
	KindMinMax Kind = "minmax"
)

// Kinds lists every wire-selectable carrier, in display order.
func Kinds() []Kind {
	return []Kind{KindFloat, KindBool, KindCount, KindTropical, KindMinMax}
}

// ParseKind resolves a carrier name. The empty string is the float default;
// the aliases cover the obvious spellings ("boolean", "counting", "cost",
// "security", …).
func ParseKind(name string) (Kind, error) {
	switch name {
	case "", "float", "numeric", "num":
		return KindFloat, nil
	case "bool", "boolean":
		return KindBool, nil
	case "count", "counting":
		return KindCount, nil
	case "tropical", "cost", "minplus", "min-plus":
		return KindTropical, nil
	case "minmax", "min-max", "security", "access":
		return KindMinMax, nil
	}
	return "", fmt.Errorf("semiring: unknown semiring %q (want float, bool, count, tropical or minmax)", name)
}

// String returns the canonical wire name.
func (k Kind) String() string { return string(k) }
