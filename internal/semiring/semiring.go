// Package semiring provides commutative semirings and the evaluation of
// provenance polynomials inside them. This realizes the paper's model 1
// (§2.1): polynomials over N[X] are the universal provenance semiring, and
// assigning semiring values to variables specializes them — Boolean values
// for existence/non-existence hypotheticals, counts for multiplicity,
// tropical costs, max-min clearance levels, Viterbi confidences, and so on
// (Green et al., PODS'07).
//
// Every carrier here implements provenance.Carrier, so it plugs directly
// into the compiled evaluation stack: Kernel[T, C] gives each semiring the
// flat-array, delta-indexed, sharded evaluation paths that were previously
// float64-only, and Eval in this package is a thin wrapper over that
// kernel. The wire-selectable carriers (see Kind) flow end to end through
// the session Engine, the /v1 HTTP API and the CLI.
package semiring

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"provabs/internal/provenance"
)

// Semiring is a commutative semiring over T: (T, Add, Zero) is a commutative
// monoid, (T, Mul, One) is a commutative monoid, Mul distributes over Add,
// and Zero annihilates Mul. Implementations must be value-semantics-safe
// (Eval may reuse results). Carriers additionally implement
// provenance.Carrier, which embeds these laws and adds the compile-time
// hooks (NAdd, FromCoeff, Value, Chainable).
type Semiring[T any] interface {
	Zero() T
	One() T
	Add(a, b T) T
	Mul(a, b T) T
	Equal(a, b T) bool
}

// Eval evaluates the polynomial in the carrier semiring: coefficients are
// interpreted as multiplicities (NAdd), exponents as n-fold Mul, and
// variables are valuated through val. Coefficients must be within
// provenance.NaturalTolerance of a non-negative integer — the N[X] reading,
// with slack for float accumulation in the compression paths — except in
// the raw-float Numeric carrier; otherwise Eval reports an error.
//
// Eval compiles the polynomial and runs the generic kernel, so it agrees
// with Kernel.Eval by construction; callers evaluating many scenarios
// should compile once with provenance.CompileSet instead.
func Eval[T any, C provenance.Carrier[T]](sr C, p *provenance.Polynomial, val func(provenance.Var) T) (T, error) {
	var zero T
	k, err := provenance.CompilePolys[T, C](sr, []*provenance.Polynomial{p})
	if err != nil {
		return zero, fmt.Errorf("semiring: %w", err)
	}
	dense := k.NewValuation()
	seen := make(map[provenance.Var]bool)
	for _, m := range p.Monomials() {
		for _, vp := range m.Vars() {
			if !seen[vp.Var] {
				seen[vp.Var] = true
				dense[vp.Var] = val(vp.Var)
			}
		}
	}
	return k.Eval(dense, nil)[0], nil
}

// Counting is the counting semiring (N, +, ·, 0, 1): how many derivations
// produce the tuple.
type Counting struct{}

func (Counting) Zero() int64           { return 0 }
func (Counting) One() int64            { return 1 }
func (Counting) Add(a, b int64) int64  { return a + b }
func (Counting) Mul(a, b int64) int64  { return a * b }
func (Counting) Equal(a, b int64) bool { return a == b }

// NAdd returns n·x — the n-fold sum in O(1).
func (Counting) NAdd(n int64, x int64) int64 {
	if n <= 0 {
		return 0
	}
	return n * x
}

// FromCoeff converts a natural multiplicity to its count.
func (Counting) FromCoeff(c float64) (int64, error) { return provenance.NaturalCoeff(c) }

// Value parses a scenario assignment as a tuple multiplicity (0 deletes the
// tuple, n replicates it n-fold).
func (Counting) Value(x float64) (int64, error) { return provenance.NaturalCoeff(x) }

// Chainable reports true: counting deltas recompute affected polynomials
// whole, exactly like the float path.
func (Counting) Chainable() bool { return true }

// Boolean is the Boolean semiring ({false,true}, ∨, ∧): does the tuple
// survive the hypothetical deletion scenario.
type Boolean struct{}

func (Boolean) Zero() bool           { return false }
func (Boolean) One() bool            { return true }
func (Boolean) Add(a, b bool) bool   { return a || b }
func (Boolean) Mul(a, b bool) bool   { return a && b }
func (Boolean) Equal(a, b bool) bool { return a == b }

// NAdd keeps x for any positive multiplicity (∨ is idempotent).
func (Boolean) NAdd(n int64, x bool) bool { return n > 0 && x }

// FromCoeff maps any positive multiplicity to true.
func (Boolean) FromCoeff(c float64) (bool, error) {
	n, err := provenance.NaturalCoeff(c)
	return n > 0, err
}

// Value parses a scenario assignment as survival: 0 deletes the tuple,
// anything else keeps it.
func (Boolean) Value(x float64) (bool, error) { return x != 0, nil }

// Chainable reports false: the idempotent carriers use identity-baseline
// deltas only.
func (Boolean) Chainable() bool { return false }

// Tropical is the min-plus semiring (R∪{∞}, min, +, ∞, 0): cheapest
// derivation cost.
type Tropical struct{}

func (Tropical) Zero() float64            { return math.Inf(1) }
func (Tropical) One() float64             { return 0 }
func (Tropical) Add(a, b float64) float64 { return math.Min(a, b) }
func (Tropical) Mul(a, b float64) float64 { return a + b }
func (Tropical) Equal(a, b float64) bool  { return a == b }

// NAdd keeps x for any positive multiplicity (min is idempotent).
func (Tropical) NAdd(n int64, x float64) float64 {
	if n <= 0 {
		return math.Inf(1)
	}
	return x
}

// FromCoeff maps any positive multiplicity to the zero-cost One.
func (Tropical) FromCoeff(c float64) (float64, error) {
	n, err := provenance.NaturalCoeff(c)
	if err != nil {
		return math.Inf(1), err
	}
	return (Tropical{}).NAdd(n, 0), nil
}

// Value parses a scenario assignment as the tuple's cost (+Inf deletes it).
func (Tropical) Value(x float64) (float64, error) {
	if math.IsNaN(x) {
		return 0, fmt.Errorf("cost is NaN")
	}
	return x, nil
}

// Chainable reports false: min is not invertible, so chained bases buy
// nothing over the identity baseline.
func (Tropical) Chainable() bool { return false }

// MinMax is the max-min access-control semiring (R∪{±∞}, max, min, −∞, +∞):
// valuate each tuple with its clearance level and the answer is the highest
// level at which it is still derivable — the best-supported derivation's
// weakest link (Foster et al.'s security semiring, with numeric levels).
type MinMax struct{}

func (MinMax) Zero() float64            { return math.Inf(-1) }
func (MinMax) One() float64             { return math.Inf(1) }
func (MinMax) Add(a, b float64) float64 { return math.Max(a, b) }
func (MinMax) Mul(a, b float64) float64 { return math.Min(a, b) }
func (MinMax) Equal(a, b float64) bool  { return a == b }

// NAdd keeps x for any positive multiplicity (max is idempotent).
func (MinMax) NAdd(n int64, x float64) float64 {
	if n <= 0 {
		return math.Inf(-1)
	}
	return x
}

// FromCoeff maps any positive multiplicity to the unconstraining One (+∞).
func (MinMax) FromCoeff(c float64) (float64, error) {
	n, err := provenance.NaturalCoeff(c)
	if err != nil {
		return math.Inf(-1), err
	}
	return (MinMax{}).NAdd(n, math.Inf(1)), nil
}

// Value parses a scenario assignment as the tuple's clearance level.
func (MinMax) Value(x float64) (float64, error) {
	if math.IsNaN(x) {
		return 0, fmt.Errorf("clearance level is NaN")
	}
	return x, nil
}

// Chainable reports false: the idempotent carriers use identity-baseline
// deltas only.
func (MinMax) Chainable() bool { return false }

// Viterbi is the Viterbi semiring ([0,1], max, ·, 0, 1): most likely
// derivation.
type Viterbi struct{}

func (Viterbi) Zero() float64            { return 0 }
func (Viterbi) One() float64             { return 1 }
func (Viterbi) Add(a, b float64) float64 { return math.Max(a, b) }
func (Viterbi) Mul(a, b float64) float64 { return a * b }
func (Viterbi) Equal(a, b float64) bool  { return a == b }

// NAdd keeps x for any positive multiplicity (max is idempotent).
func (Viterbi) NAdd(n int64, x float64) float64 {
	if n <= 0 {
		return 0
	}
	return x
}

// FromCoeff maps any positive multiplicity to the certain One.
func (Viterbi) FromCoeff(c float64) (float64, error) {
	n, err := provenance.NaturalCoeff(c)
	if err != nil {
		return 0, err
	}
	return (Viterbi{}).NAdd(n, 1), nil
}

// Value parses a scenario assignment as the tuple's probability.
func (Viterbi) Value(x float64) (float64, error) {
	if !(x >= 0 && x <= 1) {
		return 0, fmt.Errorf("probability %v is outside [0,1]", x)
	}
	return x, nil
}

// Chainable reports false: the idempotent carriers use identity-baseline
// deltas only.
func (Viterbi) Chainable() bool { return false }

// Fuzzy is the fuzzy semiring ([0,1], max, min, 0, 1).
type Fuzzy struct{}

func (Fuzzy) Zero() float64            { return 0 }
func (Fuzzy) One() float64             { return 1 }
func (Fuzzy) Add(a, b float64) float64 { return math.Max(a, b) }
func (Fuzzy) Mul(a, b float64) float64 { return math.Min(a, b) }
func (Fuzzy) Equal(a, b float64) bool  { return a == b }

// NAdd keeps x for any positive multiplicity (max is idempotent).
func (Fuzzy) NAdd(n int64, x float64) float64 {
	if n <= 0 {
		return 0
	}
	return x
}

// FromCoeff maps any positive multiplicity to the fully-true One.
func (Fuzzy) FromCoeff(c float64) (float64, error) {
	n, err := provenance.NaturalCoeff(c)
	if err != nil {
		return 0, err
	}
	return (Fuzzy{}).NAdd(n, 1), nil
}

// Value parses a scenario assignment as the tuple's membership degree.
func (Fuzzy) Value(x float64) (float64, error) {
	if !(x >= 0 && x <= 1) {
		return 0, fmt.Errorf("membership degree %v is outside [0,1]", x)
	}
	return x, nil
}

// Chainable reports false: the idempotent carriers use identity-baseline
// deltas only.
func (Fuzzy) Chainable() bool { return false }

// Witnesses is an element of the Why semiring: a set of witness sets, each
// witness a sorted set of variable names. The canonical encoding keeps sets
// sorted and deduplicated so Equal is structural.
type Witnesses [][]string

// Why is the Why-provenance semiring (sets of witness sets; union and
// pairwise union). Zero is the empty set; One is the set holding the empty
// witness.
type Why struct{}

func (Why) Zero() Witnesses { return Witnesses{} }
func (Why) One() Witnesses  { return Witnesses{{}} }

func (Why) Add(a, b Witnesses) Witnesses {
	return canonWitnesses(append(append(Witnesses{}, a...), b...))
}

func (Why) Mul(a, b Witnesses) Witnesses {
	var out Witnesses
	for _, wa := range a {
		for _, wb := range b {
			merged := map[string]bool{}
			for _, x := range wa {
				merged[x] = true
			}
			for _, x := range wb {
				merged[x] = true
			}
			var w []string
			for x := range merged {
				w = append(w, x)
			}
			sort.Strings(w)
			out = append(out, w)
		}
	}
	return canonWitnesses(out)
}

func (Why) Equal(a, b Witnesses) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if strings.Join(a[i], ",") != strings.Join(b[i], ",") {
			return false
		}
	}
	return true
}

// NAdd keeps x for any positive multiplicity (union is idempotent).
func (Why) NAdd(n int64, x Witnesses) Witnesses {
	if n <= 0 {
		return Witnesses{}
	}
	return x
}

// FromCoeff maps any positive multiplicity to One.
func (Why) FromCoeff(c float64) (Witnesses, error) {
	n, err := provenance.NaturalCoeff(c)
	if err != nil {
		return Witnesses{}, err
	}
	return (Why{}).NAdd(n, Witnesses{{}}), nil
}

// Value reports an error: witness sets cannot be parsed from a number —
// valuate Why polynomials programmatically with Singleton.
func (Why) Value(x float64) (Witnesses, error) {
	return nil, fmt.Errorf("why-provenance has no numeric valuation")
}

// Chainable reports false: the idempotent carriers use identity-baseline
// deltas only.
func (Why) Chainable() bool { return false }

// Singleton returns the Why value of a base tuple annotated with name.
func Singleton(name string) Witnesses { return Witnesses{{name}} }

func canonWitnesses(ws Witnesses) Witnesses {
	seen := map[string]bool{}
	var out Witnesses
	for _, w := range ws {
		key := strings.Join(w, ",")
		if !seen[key] {
			seen[key] = true
			out = append(out, w)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return strings.Join(out[i], ",") < strings.Join(out[j], ",")
	})
	return out
}

// Numeric is the standard (R, +, ·) semiring — the aggregate reading of
// model 2. It is provenance.Float, the carrier the whole pre-generic stack
// evaluated in, re-exported here so the semiring API is complete.
type Numeric = provenance.Float
