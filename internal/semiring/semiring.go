// Package semiring provides commutative semirings and the evaluation of
// provenance polynomials inside them. This realizes the paper's model 1
// (§2.1): polynomials over N[X] are the universal provenance semiring, and
// assigning semiring values to variables specializes them — Boolean values
// for existence/non-existence hypotheticals, counts for multiplicity,
// tropical costs, Viterbi confidences, and so on (Green et al., PODS'07).
package semiring

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"provabs/internal/provenance"
)

// Semiring is a commutative semiring over T: (T, Add, Zero) is a commutative
// monoid, (T, Mul, One) is a commutative monoid, Mul distributes over Add,
// and Zero annihilates Mul. Implementations must be value-semantics-safe
// (Eval may reuse results).
type Semiring[T any] interface {
	Zero() T
	One() T
	Add(a, b T) T
	Mul(a, b T) T
	Equal(a, b T) bool
}

// Eval evaluates the polynomial in the semiring: coefficients are
// interpreted as multiplicities (n-fold Add), exponents as n-fold Mul, and
// variables are valuated through val. Coefficients must be non-negative
// integers — the N[X] reading — otherwise Eval reports an error.
func Eval[T any](sr Semiring[T], p *provenance.Polynomial, val func(provenance.Var) T) (T, error) {
	acc := sr.Zero()
	for _, m := range p.Monomials() {
		c := m.Coeff
		if c != math.Trunc(c) || c < 0 {
			return acc, fmt.Errorf("semiring: coefficient %v is not a natural multiplicity", c)
		}
		term := sr.One()
		for _, vp := range m.Vars() {
			x := val(vp.Var)
			for i := int32(0); i < vp.Pow; i++ {
				term = sr.Mul(term, x)
			}
		}
		acc = sr.Add(acc, nTimes(sr, int64(c), term))
	}
	return acc, nil
}

// nTimes adds x to itself n times (fast doubling).
func nTimes[T any](sr Semiring[T], n int64, x T) T {
	acc := sr.Zero()
	for n > 0 {
		if n&1 == 1 {
			acc = sr.Add(acc, x)
		}
		x = sr.Add(x, x)
		n >>= 1
	}
	return acc
}

// Counting is the counting semiring (N, +, ·, 0, 1): how many derivations
// produce the tuple.
type Counting struct{}

func (Counting) Zero() int64           { return 0 }
func (Counting) One() int64            { return 1 }
func (Counting) Add(a, b int64) int64  { return a + b }
func (Counting) Mul(a, b int64) int64  { return a * b }
func (Counting) Equal(a, b int64) bool { return a == b }

// Boolean is the Boolean semiring ({false,true}, ∨, ∧): does the tuple
// survive the hypothetical deletion scenario.
type Boolean struct{}

func (Boolean) Zero() bool           { return false }
func (Boolean) One() bool            { return true }
func (Boolean) Add(a, b bool) bool   { return a || b }
func (Boolean) Mul(a, b bool) bool   { return a && b }
func (Boolean) Equal(a, b bool) bool { return a == b }

// Tropical is the min-plus semiring (R∪{∞}, min, +, ∞, 0): cheapest
// derivation cost.
type Tropical struct{}

func (Tropical) Zero() float64            { return math.Inf(1) }
func (Tropical) One() float64             { return 0 }
func (Tropical) Add(a, b float64) float64 { return math.Min(a, b) }
func (Tropical) Mul(a, b float64) float64 { return a + b }
func (Tropical) Equal(a, b float64) bool  { return a == b }

// Viterbi is the Viterbi semiring ([0,1], max, ·, 0, 1): most likely
// derivation.
type Viterbi struct{}

func (Viterbi) Zero() float64            { return 0 }
func (Viterbi) One() float64             { return 1 }
func (Viterbi) Add(a, b float64) float64 { return math.Max(a, b) }
func (Viterbi) Mul(a, b float64) float64 { return a * b }
func (Viterbi) Equal(a, b float64) bool  { return a == b }

// Fuzzy is the fuzzy semiring ([0,1], max, min, 0, 1).
type Fuzzy struct{}

func (Fuzzy) Zero() float64            { return 0 }
func (Fuzzy) One() float64             { return 1 }
func (Fuzzy) Add(a, b float64) float64 { return math.Max(a, b) }
func (Fuzzy) Mul(a, b float64) float64 { return math.Min(a, b) }
func (Fuzzy) Equal(a, b float64) bool  { return a == b }

// Witnesses is an element of the Why semiring: a set of witness sets, each
// witness a sorted set of variable names. The canonical encoding keeps sets
// sorted and deduplicated so Equal is structural.
type Witnesses [][]string

// Why is the Why-provenance semiring (sets of witness sets; union and
// pairwise union). Zero is the empty set; One is the set holding the empty
// witness.
type Why struct{}

func (Why) Zero() Witnesses { return Witnesses{} }
func (Why) One() Witnesses  { return Witnesses{{}} }

func (Why) Add(a, b Witnesses) Witnesses {
	return canonWitnesses(append(append(Witnesses{}, a...), b...))
}

func (Why) Mul(a, b Witnesses) Witnesses {
	var out Witnesses
	for _, wa := range a {
		for _, wb := range b {
			merged := map[string]bool{}
			for _, x := range wa {
				merged[x] = true
			}
			for _, x := range wb {
				merged[x] = true
			}
			var w []string
			for x := range merged {
				w = append(w, x)
			}
			sort.Strings(w)
			out = append(out, w)
		}
	}
	return canonWitnesses(out)
}

func (Why) Equal(a, b Witnesses) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if strings.Join(a[i], ",") != strings.Join(b[i], ",") {
			return false
		}
	}
	return true
}

// Singleton returns the Why value of a base tuple annotated with name.
func Singleton(name string) Witnesses { return Witnesses{{name}} }

func canonWitnesses(ws Witnesses) Witnesses {
	seen := map[string]bool{}
	var out Witnesses
	for _, w := range ws {
		key := strings.Join(w, ",")
		if !seen[key] {
			seen[key] = true
			out = append(out, w)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return strings.Join(out[i], ",") < strings.Join(out[j], ",")
	})
	return out
}

// Numeric is the standard (R, +, ·) semiring — the aggregate reading of
// model 2, equivalent to Polynomial.Eval but exposed through the same
// interface for uniformity.
type Numeric struct{}

func (Numeric) Zero() float64            { return 0 }
func (Numeric) One() float64             { return 1 }
func (Numeric) Add(a, b float64) float64 { return a + b }
func (Numeric) Mul(a, b float64) float64 { return a * b }
func (Numeric) Equal(a, b float64) bool  { return a == b }
