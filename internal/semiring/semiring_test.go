package semiring

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"provabs/internal/provenance"
)

// checkLaws verifies the commutative-semiring laws on sampled elements.
func checkLaws[T any](t *testing.T, name string, sr Semiring[T], sample func(*rand.Rand) T) {
	t.Helper()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b, c := sample(rng), sample(rng), sample(rng)
		// Commutativity.
		if !sr.Equal(sr.Add(a, b), sr.Add(b, a)) {
			t.Logf("%s: add not commutative", name)
			return false
		}
		if !sr.Equal(sr.Mul(a, b), sr.Mul(b, a)) {
			t.Logf("%s: mul not commutative", name)
			return false
		}
		// Associativity.
		if !sr.Equal(sr.Add(sr.Add(a, b), c), sr.Add(a, sr.Add(b, c))) {
			t.Logf("%s: add not associative", name)
			return false
		}
		if !sr.Equal(sr.Mul(sr.Mul(a, b), c), sr.Mul(a, sr.Mul(b, c))) {
			t.Logf("%s: mul not associative", name)
			return false
		}
		// Identities.
		if !sr.Equal(sr.Add(a, sr.Zero()), a) {
			t.Logf("%s: zero not additive identity", name)
			return false
		}
		if !sr.Equal(sr.Mul(a, sr.One()), a) {
			t.Logf("%s: one not multiplicative identity", name)
			return false
		}
		// Annihilation.
		if !sr.Equal(sr.Mul(a, sr.Zero()), sr.Zero()) {
			t.Logf("%s: zero does not annihilate", name)
			return false
		}
		// Distributivity.
		if !sr.Equal(sr.Mul(a, sr.Add(b, c)), sr.Add(sr.Mul(a, b), sr.Mul(a, c))) {
			t.Logf("%s: mul does not distribute over add", name)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Errorf("%s: %v", name, err)
	}
}

func TestSemiringLaws(t *testing.T) {
	checkLaws[int64](t, "counting", Counting{}, func(r *rand.Rand) int64 { return int64(r.Intn(20)) })
	checkLaws[bool](t, "boolean", Boolean{}, func(r *rand.Rand) bool { return r.Intn(2) == 0 })
	checkLaws[float64](t, "tropical", Tropical{}, func(r *rand.Rand) float64 {
		if r.Intn(8) == 0 {
			return math.Inf(1)
		}
		return float64(r.Intn(50))
	})
	checkLaws[float64](t, "minmax", MinMax{}, func(r *rand.Rand) float64 {
		switch r.Intn(10) {
		case 0:
			return math.Inf(1)
		case 1:
			return math.Inf(-1)
		default:
			return float64(r.Intn(9))
		}
	})
	// Binary fractions multiply exactly in float64, keeping associativity
	// checkable with exact equality.
	binFrac := []float64{0, 0.125, 0.25, 0.5, 1}
	checkLaws[float64](t, "viterbi", Viterbi{}, func(r *rand.Rand) float64 { return binFrac[r.Intn(len(binFrac))] })
	checkLaws[float64](t, "fuzzy", Fuzzy{}, func(r *rand.Rand) float64 { return float64(r.Intn(11)) / 10 })
	checkLaws[Witnesses](t, "why", Why{}, func(r *rand.Rand) Witnesses {
		names := []string{"r1", "r2", "r3"}
		var ws Witnesses
		for i := 0; i < r.Intn(3); i++ {
			var w []string
			for _, n := range names {
				if r.Intn(2) == 0 {
					w = append(w, n)
				}
			}
			ws = append(ws, w)
		}
		return canonWitnesses(ws)
	})
	checkLaws[float64](t, "numeric", Numeric{}, func(r *rand.Rand) float64 { return float64(r.Intn(9)) })
}

func TestEvalBooleanDeletionScenario(t *testing.T) {
	vb := provenance.NewVocab()
	// p = t1·t2 + t3 — the output exists if both t1,t2 survive or t3 does.
	p := provenance.MustParse(vb, "t1·t2 + t3")
	t1, _ := vb.Lookup("t1")
	t3, _ := vb.Lookup("t3")
	alive := func(dead ...provenance.Var) func(provenance.Var) bool {
		d := map[provenance.Var]bool{}
		for _, v := range dead {
			d[v] = true
		}
		return func(v provenance.Var) bool { return !d[v] }
	}
	got, err := Eval[bool](Boolean{}, p, alive())
	if err != nil || got != true {
		t.Errorf("no deletions: %v, %v", got, err)
	}
	got, _ = Eval[bool](Boolean{}, p, alive(t3))
	if got != true {
		t.Error("deleting t3 alone should keep the tuple (t1·t2 derivation)")
	}
	got, _ = Eval[bool](Boolean{}, p, alive(t1, t3))
	if got != false {
		t.Error("deleting t1 and t3 should kill the tuple")
	}
}

func TestEvalCountingMultiplicity(t *testing.T) {
	vb := provenance.NewVocab()
	p := provenance.MustParse(vb, "2·x·y + 3·z")
	val := map[string]int64{"x": 2, "y": 3, "z": 1}
	got, err := Eval[int64](Counting{}, p, func(v provenance.Var) int64 { return val[vb.Name(v)] })
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(2*2*3 + 3*1); got != want {
		t.Errorf("counting eval = %d, want %d", got, want)
	}
}

func TestEvalTropicalCheapestDerivation(t *testing.T) {
	vb := provenance.NewVocab()
	p := provenance.MustParse(vb, "a·b + c")
	cost := map[string]float64{"a": 2, "b": 5, "c": 10}
	got, err := Eval[float64](Tropical{}, p, func(v provenance.Var) float64 { return cost[vb.Name(v)] })
	if err != nil {
		t.Fatal(err)
	}
	if got != 7 { // min(2+5, 10)
		t.Errorf("tropical eval = %v, want 7", got)
	}
}

func TestEvalWhyProvenance(t *testing.T) {
	vb := provenance.NewVocab()
	p := provenance.MustParse(vb, "a·b + a")
	got, err := Eval[Witnesses](Why{}, p, func(v provenance.Var) Witnesses {
		return Singleton(vb.Name(v))
	})
	if err != nil {
		t.Fatal(err)
	}
	want := Witnesses{{"a"}, {"a", "b"}}
	if !(Why{}).Equal(got, want) {
		t.Errorf("why eval = %v, want %v", got, want)
	}
}

func TestEvalRejectsNonNaturalCoefficients(t *testing.T) {
	vb := provenance.NewVocab()
	for _, src := range []string{"0.5·x", "-2·x"} {
		p := provenance.MustParse(vb, src)
		if _, err := Eval[bool](Boolean{}, p, func(provenance.Var) bool { return true }); err == nil {
			t.Errorf("Eval(%q) accepted a non-natural coefficient", src)
		}
	}
}

// Regression: coefficients within provenance.NaturalTolerance of an integer
// are accepted — the summarize compression path accumulates multiplicities
// in float64 and can emit 2.9999999999 where 3 is meant. A strict integer
// check used to reject those polynomials outright.
func TestEvalAcceptsNearIntegerCoefficients(t *testing.T) {
	vb := provenance.NewVocab()
	p := provenance.NewPolynomial()
	p.AddTerm(2.9999999999, vb.Var("x")) // within 1e-9 of 3
	got, err := Eval[int64](Counting{}, p, func(provenance.Var) int64 { return 2 })
	if err != nil {
		t.Fatalf("Eval rejected a near-integer coefficient: %v", err)
	}
	if got != 6 { // 3·2: the multiplicity rounds to 3
		t.Errorf("counting eval = %d, want 6", got)
	}
	// Just past the tolerance still fails.
	q := provenance.NewPolynomial()
	q.AddTerm(2.99, vb.Var("x"))
	if _, err := Eval[int64](Counting{}, q, func(provenance.Var) int64 { return 1 }); err == nil {
		t.Error("Eval accepted a coefficient 0.01 from an integer")
	}
}

// Property: Numeric semiring evaluation agrees with Polynomial.Eval on
// natural-coefficient polynomials.
func TestQuickNumericMatchesEval(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vb := provenance.NewVocab()
		p := provenance.NewPolynomial()
		vars := []provenance.Var{vb.Var("x"), vb.Var("y"), vb.Var("z")}
		for i := 0; i < rng.Intn(6)+1; i++ {
			var vs []provenance.Var
			for j := 0; j < rng.Intn(3); j++ {
				vs = append(vs, vars[rng.Intn(3)])
			}
			p.AddTerm(float64(rng.Intn(5)), vs...)
		}
		val := map[provenance.Var]float64{}
		for _, v := range vars {
			val[v] = float64(rng.Intn(4))
		}
		want := p.Eval(val)
		got, err := Eval[float64](Numeric{}, p, func(v provenance.Var) float64 { return val[v] })
		if err != nil {
			return false
		}
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: evaluation commutes with abstraction under group-uniform
// valuations in ANY semiring (the semantic guarantee that makes abstraction
// sound for hypothetical reasoning). Tested in the counting semiring.
func TestQuickAbstractionCommutesInCounting(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vb := provenance.NewVocab()
		p := provenance.NewPolynomial()
		vars := []provenance.Var{vb.Var("a"), vb.Var("b"), vb.Var("c"), vb.Var("d")}
		for i := 0; i < rng.Intn(8)+1; i++ {
			var vs []provenance.Var
			for j := 0; j < rng.Intn(3); j++ {
				vs = append(vs, vars[rng.Intn(4)])
			}
			p.AddTerm(float64(rng.Intn(3)+1), vs...)
		}
		g := vb.Var("g")
		subst := map[provenance.Var]provenance.Var{vars[0]: g, vars[1]: g}
		q := p.Substitute(subst)
		gval := int64(rng.Intn(4))
		val := map[provenance.Var]int64{vars[0]: gval, vars[1]: gval, g: gval,
			vars[2]: int64(rng.Intn(4)), vars[3]: int64(rng.Intn(4))}
		a, err1 := Eval[int64](Counting{}, p, func(v provenance.Var) int64 { return val[v] })
		b, err2 := Eval[int64](Counting{}, q, func(v provenance.Var) int64 { return val[v] })
		return err1 == nil && err2 == nil && a == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
