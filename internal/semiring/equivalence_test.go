package semiring

// Kernel-vs-naive equivalence: the compiled evaluation stack (Kernel.Eval,
// EvalDelta, EvalFrom, Append) must agree with a direct map-based reading of
// the polynomials in every carrier, across random polynomial shapes — mixed
// powers, empty polynomials, shared variables — and across incremental
// appends. The naive evaluator below mirrors the N[X] semantics the kernel
// compiles (coefficient through FromCoeff, then n-fold Mul per power) but
// shares none of its code paths.

import (
	"math"
	"math/rand"
	"testing"

	"provabs/internal/provenance"
)

// naiveEval reads one polynomial directly off its monomials.
func naiveEval[T any, C provenance.Carrier[T]](cr C, p *provenance.Polynomial, val map[provenance.Var]T) (T, error) {
	acc := cr.Zero()
	for _, m := range p.Monomials() {
		term, err := cr.FromCoeff(m.Coeff)
		if err != nil {
			return acc, err
		}
		for _, vp := range m.Vars() {
			x, ok := val[vp.Var]
			if !ok {
				x = cr.One()
			}
			for k := int32(0); k < vp.Pow; k++ {
				term = cr.Mul(term, x)
			}
		}
		acc = cr.Add(acc, term)
	}
	return acc, nil
}

// randomSet builds a random natural-coefficient set over a small vocabulary:
// varying term counts (including empty polynomials), powers up to 3, shared
// variables so deltas touch several polynomials at once.
func randomSet(rng *rand.Rand, vb *provenance.Vocab, nPolys int) *provenance.Set {
	set := provenance.NewSet(vb)
	vars := []provenance.Var{vb.Var("a"), vb.Var("b"), vb.Var("c"), vb.Var("d"), vb.Var("e")}
	for i := 0; i < nPolys; i++ {
		p := provenance.NewPolynomial()
		for t := 0; t < rng.Intn(5); t++ { // 0 terms = empty polynomial
			var vps []provenance.VarPow
			for _, v := range vars {
				if rng.Intn(3) == 0 {
					vps = append(vps, provenance.VarPow{Var: v, Pow: int32(1 + rng.Intn(3))})
				}
			}
			p.AddMonomial(provenance.NewMonomialPows(float64(rng.Intn(4)), vps...))
		}
		set.Add("", p)
	}
	return set
}

// checkKernelEquivalence compiles random sets in the carrier and asserts
// Eval, EvalDelta, EvalFrom and post-Append evaluation all match naiveEval.
func checkKernelEquivalence[T any, C provenance.Carrier[T]](t *testing.T, name string, cr C, sample func(*rand.Rand) T) {
	t.Helper()
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		vb := provenance.NewVocab()
		set := randomSet(rng, vb, 4+rng.Intn(4))
		k, err := provenance.CompileSet[T, C](cr, set)
		if err != nil {
			t.Fatalf("%s seed %d: compile: %v", name, seed, err)
		}

		val := map[provenance.Var]T{}
		for _, v := range set.Vars() {
			val[v] = sample(rng)
		}
		naive := func() []T {
			want := make([]T, len(set.Polys))
			for i, p := range set.Polys {
				w, err := naiveEval(cr, p, val)
				if err != nil {
					t.Fatalf("%s seed %d: naive: %v", name, seed, err)
				}
				want[i] = w
			}
			return want
		}
		dense := k.Valuation(val)
		check := func(stage string, got []T) {
			want := naive()
			if len(got) != len(want) {
				t.Fatalf("%s seed %d: %s: %d answers, want %d", name, seed, stage, len(got), len(want))
			}
			for i := range want {
				if !cr.Equal(got[i], want[i]) {
					t.Fatalf("%s seed %d: %s: poly %d = %v, want %v", name, seed, stage, i, got[i], want[i])
				}
			}
		}

		check("Eval", k.Eval(dense, nil))

		// EvalDelta: perturb a random subset of variables off the identity.
		val = map[provenance.Var]T{}
		var touched []provenance.Var
		for _, v := range set.Vars() {
			if rng.Intn(2) == 0 {
				val[v] = sample(rng)
				touched = append(touched, v)
			}
		}
		dense = k.Valuation(val)
		check("EvalDelta", k.EvalDelta(touched, dense, nil))

		// EvalFrom: chain a second perturbation off the first answers (the
		// carriers that decline chaining still take the same code path with
		// the identity baseline underneath via EvalDelta, so only chainable
		// carriers exercise EvalFrom).
		if cr.Chainable() {
			prev := append([]T(nil), k.Eval(dense, nil)...)
			prevVal := val
			val = map[provenance.Var]T{}
			for v, x := range prevVal {
				val[v] = x
			}
			var diff []provenance.Var
			for _, v := range set.Vars() {
				if rng.Intn(3) == 0 {
					val[v] = sample(rng)
					diff = append(diff, v)
				}
			}
			dense = k.Valuation(val)
			d := k.GetDeltaEval()
			check("EvalFrom", d.EvalFrom(diff, dense, prev, nil))
			k.PutDeltaEval(d)
		}

		// Append: extend the compiled kernel in place and re-check Eval.
		extra := randomSet(rng, vb, 2)
		if k.Append(extra.Polys, extra.Tags) {
			for _, p := range extra.Polys {
				set.Add("", p)
			}
			val = map[provenance.Var]T{}
			for _, v := range set.Vars() {
				val[v] = sample(rng)
			}
			check("Append+Eval", k.Eval(k.Valuation(val), nil))
		}
	}
}

func TestKernelMatchesNaiveEval(t *testing.T) {
	checkKernelEquivalence[float64](t, "numeric", Numeric{}, func(r *rand.Rand) float64 {
		return float64(r.Intn(9)) / 2
	})
	checkKernelEquivalence[bool](t, "boolean", Boolean{}, func(r *rand.Rand) bool {
		return r.Intn(2) == 0
	})
	checkKernelEquivalence[int64](t, "counting", Counting{}, func(r *rand.Rand) int64 {
		return int64(r.Intn(4))
	})
	checkKernelEquivalence[float64](t, "tropical", Tropical{}, func(r *rand.Rand) float64 {
		if r.Intn(8) == 0 {
			return math.Inf(1)
		}
		return float64(r.Intn(50))
	})
	checkKernelEquivalence[float64](t, "minmax", MinMax{}, func(r *rand.Rand) float64 {
		switch r.Intn(10) {
		case 0:
			return math.Inf(1)
		case 1:
			return math.Inf(-1)
		default:
			return float64(r.Intn(7))
		}
	})
}
