// Package hardness implements the constructions of the paper's Appendix A,
// which proves the decision problem NP-hard (Proposition 11) by reduction
// from Vertex Cover: uniformly partitioned polynomials (Definition 16), flat
// abstractions (Definition 20), the counting claims 18 and 23, and the
// Lemma 29 reduction. The constructions are executable so the reduction can
// be validated end-to-end against a brute-force vertex-cover solver.
package hardness

import (
	"fmt"

	"provabs/internal/abstree"
	"provabs/internal/provenance"
)

// UPP describes a uniformly partitioned polynomial P⟨X, n, I⟩
// (Definition 16): for every pair (a, b) ∈ I (with a < b), P contains the
// n² monomials x^(a)_i · x^(b)_j for i, j ∈ 1..n.
type UPP struct {
	X []string // metavariable names x^(1)..x^(|X|)
	N int      // blowup factor
	I [][2]int // index pairs into X, 0-based, each with I[k][0] < I[k][1]
}

// Validate checks the structural requirements of Definition 16.
func (u UPP) Validate() error {
	if u.N < 1 {
		return fmt.Errorf("hardness: blowup factor %d < 1", u.N)
	}
	seen := map[string]bool{}
	for _, x := range u.X {
		if seen[x] {
			return fmt.Errorf("hardness: duplicate metavariable %q", x)
		}
		seen[x] = true
	}
	pairSeen := map[[2]int]bool{}
	for _, p := range u.I {
		if p[0] < 0 || p[1] >= len(u.X) || p[0] >= p[1] {
			return fmt.Errorf("hardness: bad pair %v (need 0 <= a < b < %d)", p, len(u.X))
		}
		if pairSeen[p] {
			return fmt.Errorf("hardness: duplicate pair %v", p)
		}
		pairSeen[p] = true
	}
	return nil
}

// varName returns the name of variable x^(a)_i (0-based a, 1-based i).
func (u UPP) varName(a, i int) string {
	return fmt.Sprintf("%s_%d", u.X[a], i)
}

// Build materializes P⟨X, n, I⟩ as a single-polynomial set over vb.
func (u UPP) Build(vb *provenance.Vocab) (*provenance.Set, error) {
	if err := u.Validate(); err != nil {
		return nil, err
	}
	p := provenance.NewPolynomial()
	for _, pair := range u.I {
		a, b := pair[0], pair[1]
		for i := 1; i <= u.N; i++ {
			va := vb.Var(u.varName(a, i))
			for j := 1; j <= u.N; j++ {
				p.AddTerm(1, va, vb.Var(u.varName(b, j)))
			}
		}
	}
	s := provenance.NewSet(vb)
	s.Add("P", p)
	return s, nil
}

// FlatForest builds the flat abstraction of the UPP (Definition 20): one
// tree per metavariable x^(i), with root x^(i) and leaves x^(i)_1..x^(i)_n.
func (u UPP) FlatForest() (*abstree.Forest, error) {
	if err := u.Validate(); err != nil {
		return nil, err
	}
	trees := make([]*abstree.Tree, len(u.X))
	for a := range u.X {
		spec := abstree.Spec{Label: u.X[a]}
		for i := 1; i <= u.N; i++ {
			spec.Children = append(spec.Children, abstree.Leaf(u.varName(a, i)))
		}
		t, err := abstree.NewTree(spec)
		if err != nil {
			return nil, err
		}
		trees[a] = t
	}
	return abstree.NewForest(trees...)
}

// Claim18Size returns |P|_M = |I|·n² (Claim 18).
func (u UPP) Claim18Size() int { return len(u.I) * u.N * u.N }

// Claim18Granularity returns |P|_V = |X'|·n where X' is the set of
// metavariables that occur in some pair. (The paper states |X|·n under the
// implicit assumption that every metavariable participates in a pair.)
func (u UPP) Claim18Granularity() int {
	used := map[int]bool{}
	for _, p := range u.I {
		used[p[0]] = true
		used[p[1]] = true
	}
	return len(used) * u.N
}

// Claim23Size returns |P↓S|_M as predicted by Claim 23 for the VVS whose
// chosen metavariables (roots) are exactly Y (indices into X): per pair,
// 1 if both endpoints are abstracted, n² if neither is, n otherwise.
func (u UPP) Claim23Size(Y map[int]bool) int {
	total := 0
	for _, p := range u.I {
		switch {
		case Y[p[0]] && Y[p[1]]:
			total++
		case !Y[p[0]] && !Y[p[1]]:
			total += u.N * u.N
		default:
			total += u.N
		}
	}
	return total
}

// Claim23Granularity returns |P↓S|_V = |Y| + (|X'|−|Y|)·n per Claim 23,
// restricted to metavariables occurring in pairs.
func (u UPP) Claim23Granularity(Y map[int]bool) int {
	used := map[int]bool{}
	for _, p := range u.I {
		used[p[0]] = true
		used[p[1]] = true
	}
	y := 0
	for a := range Y {
		if used[a] {
			y++
		}
	}
	return y + (len(used)-y)*u.N
}

// VVSForRoots builds, over the flat forest, the VVS that chooses the root of
// every tree in Y and the leaves of every other tree.
func (u UPP) VVSForRoots(f *abstree.Forest, Y map[int]bool) *abstree.VVS {
	nodes := make([][]int, len(f.Trees))
	for ti, t := range f.Trees {
		if Y[ti] {
			nodes[ti] = []int{t.Root()}
		} else {
			nodes[ti] = append([]int(nil), t.Leaves()...)
		}
	}
	return &abstree.VVS{Forest: f, Nodes: nodes}
}

// Graph is an undirected graph for the Vertex Cover side of the reduction.
// The Lemma 29 preconditions (Theorem 28) require at least two nodes, at
// least one edge, and no self loops.
type Graph struct {
	N     int
	Edges [][2]int // 0-based endpoints, u < v after normalization
}

// Validate checks the Theorem 28 preconditions and normalizes edges.
func (g *Graph) Validate() error {
	if g.N < 2 {
		return fmt.Errorf("hardness: graph needs at least 2 nodes, has %d", g.N)
	}
	if len(g.Edges) == 0 {
		return fmt.Errorf("hardness: graph needs at least one edge")
	}
	seen := map[[2]int]bool{}
	for i, e := range g.Edges {
		if e[0] == e[1] {
			return fmt.Errorf("hardness: self loop at %d", e[0])
		}
		if e[0] > e[1] {
			e[0], e[1] = e[1], e[0]
			g.Edges[i] = e
		}
		if e[0] < 0 || e[1] >= g.N {
			return fmt.Errorf("hardness: edge %v out of range", e)
		}
		if seen[e] {
			return fmt.Errorf("hardness: duplicate edge %v", e)
		}
		seen[e] = true
	}
	return nil
}

// IsVertexCover reports whether cover (a set of node indices) covers every
// edge.
func (g Graph) IsVertexCover(cover map[int]bool) bool {
	for _, e := range g.Edges {
		if !cover[e[0]] && !cover[e[1]] {
			return false
		}
	}
	return true
}

// HasVertexCoverOfSize reports, by exhaustive search, whether g has a vertex
// cover of size exactly k.
func (g Graph) HasVertexCoverOfSize(k int) bool {
	if k < 0 || k > g.N {
		return false
	}
	// Any cover of size <= k extends to size exactly k by padding, so it
	// suffices to find a cover of size at most k.
	n := g.N
	for mask := 0; mask < 1<<n; mask++ {
		if popcount(mask) > k {
			continue
		}
		cover := map[int]bool{}
		for v := 0; v < n; v++ {
			if mask&(1<<v) != 0 {
				cover[v] = true
			}
		}
		if g.IsVertexCover(cover) {
			return true
		}
	}
	return false
}

func popcount(x int) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}

// Reduce maps a Vertex Cover instance to the UPP of Lemma 29:
// P⟨X, |V|³, I⟩ with one metavariable per node and one pair per edge.
// The blowup can be overridden (blowup <= 0 uses the paper's |V|³) so tests
// can run the construction at tractable sizes. The proof's counting argument
// requires the blowup n to satisfy n > |E| — then a single uncovered edge
// contributes n² monomials, overshooting the size ceiling |E|·n, which is
// what forces every precise abstraction to correspond to a vertex cover.
// The paper's n = |V|³ satisfies this since |E| ≤ |V|² < |V|³.
func Reduce(g Graph, blowup int) (UPP, error) {
	if err := g.Validate(); err != nil {
		return UPP{}, err
	}
	if blowup <= 0 {
		blowup = g.N * g.N * g.N
	}
	if blowup <= len(g.Edges) {
		return UPP{}, fmt.Errorf("hardness: blowup %d must exceed the edge count %d", blowup, len(g.Edges))
	}
	u := UPP{N: blowup}
	for v := 0; v < g.N; v++ {
		u.X = append(u.X, fmt.Sprintf("x%d", v))
	}
	for _, e := range g.Edges {
		u.I = append(u.I, e)
	}
	return u, nil
}

// Lemma29K returns the granularity bound K = (|V|−k)·n³+k of Lemma 29 for
// cover size k (with the UPP's actual blowup in place of n³).
func Lemma29K(g Graph, u UPP, k int) int {
	return (g.N-k)*u.N + k
}

// Lemma29MaxB returns the size-bound ceiling of Lemma 29 adjusted to the
// UPP's actual blowup: a cover yields |P↓S|_M ≤ |E|·n, and the reduction
// needs the ceiling below n² so that an uncovered edge overshoots it (the
// paper's ceiling |V|⁵ = |V|²·|V|³ plays this role for n = |V|³ because
// |E| ≤ |V|²).
func Lemma29MaxB(g Graph, u UPP) int {
	return len(g.Edges) * u.N
}

// ExistsPreciseForK reports, by exhaustively trying every flat VVS (every
// subset Y of trees abstracted to their roots), whether the UPP has a
// precise abstraction with granularity exactly K and size within
// {2..maxB}. This is the right-hand side of Lemma 29. It uses Claim 23 for
// the counting — Claims are validated against direct substitution in tests.
func (u UPP) ExistsPreciseForK(K, maxB int) bool {
	n := len(u.X)
	for mask := 0; mask < 1<<n; mask++ {
		Y := map[int]bool{}
		for a := 0; a < n; a++ {
			if mask&(1<<a) != 0 {
				Y[a] = true
			}
		}
		b := u.Claim23Size(Y)
		if u.Claim23Granularity(Y) == K && b >= 2 && b <= maxB {
			return true
		}
	}
	return false
}
