package hardness

import (
	"math/rand"
	"testing"
	"testing/quick"

	"provabs/internal/provenance"
)

// example17 is the UPP of Example 17: X = {x1..x4}, n = 3,
// I = {(1,2),(1,3),(2,3),(2,4)} (1-based in the paper, 0-based here).
func example17() UPP {
	return UPP{
		X: []string{"x1", "x2", "x3", "x4"},
		N: 3,
		I: [][2]int{{0, 1}, {0, 2}, {1, 2}, {1, 3}},
	}
}

func TestExample17Claim18(t *testing.T) {
	u := example17()
	vb := provenance.NewVocab()
	s, err := u.Build(vb)
	if err != nil {
		t.Fatal(err)
	}
	// Claim 18 / Example 19: |P|_M = 4·3² = 36, |P|_V = 4·3 = 12.
	if got := s.Size(); got != 36 || got != u.Claim18Size() {
		t.Errorf("|P|_M = %d (claim %d), want 36", got, u.Claim18Size())
	}
	if got := s.Granularity(); got != 12 || got != u.Claim18Granularity() {
		t.Errorf("|P|_V = %d (claim %d), want 12", got, u.Claim18Granularity())
	}
}

// TestExample24 verifies Claim 23 on the paper's worked example:
// Y = {x1, x3} gives P↓S with sizes 3+1+3+9 = 16 monomials and
// 2 + 2·3 = 8 variables.
func TestExample24Claim23(t *testing.T) {
	u := example17()
	vb := provenance.NewVocab()
	s, err := u.Build(vb)
	if err != nil {
		t.Fatal(err)
	}
	f, err := u.FlatForest()
	if err != nil {
		t.Fatal(err)
	}
	Y := map[int]bool{0: true, 2: true} // x1 and x3
	v := u.VVSForRoots(f, Y)
	if err := v.Validate(); err != nil {
		t.Fatal(err)
	}
	abs := v.Apply(s)
	if got, want := abs.Size(), u.Claim23Size(Y); got != want || got != 16 {
		t.Errorf("|P↓S|_M = %d, claim %d, want 16", got, want)
	}
	if got, want := abs.Granularity(), u.Claim23Granularity(Y); got != want || got != 8 {
		t.Errorf("|P↓S|_V = %d, claim %d, want 8", got, want)
	}
	// Spot-check Example 24's P^(1,3)_S coefficient: 9·x1·x3.
	x1, x3 := vb.Var("x1"), vb.Var("x3")
	if got := abs.Polys[0].Coeff(x1, x3); got != 9 {
		t.Errorf("coeff of x1·x3 = %v, want 9", got)
	}
}

// Property (Claims 18 & 23): for random UPPs and random root-subsets, the
// closed-form sizes match direct substitution exactly.
func TestQuickClaims(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nx := rng.Intn(3) + 2
		u := UPP{N: rng.Intn(3) + 1}
		for a := 0; a < nx; a++ {
			u.X = append(u.X, "x"+string(rune('0'+a)))
		}
		for a := 0; a < nx; a++ {
			for b := a + 1; b < nx; b++ {
				if rng.Intn(2) == 0 {
					u.I = append(u.I, [2]int{a, b})
				}
			}
		}
		if len(u.I) == 0 {
			u.I = append(u.I, [2]int{0, 1})
		}
		vb := provenance.NewVocab()
		s, err := u.Build(vb)
		if err != nil {
			return false
		}
		if s.Size() != u.Claim18Size() || s.Granularity() != u.Claim18Granularity() {
			return false
		}
		forest, err := u.FlatForest()
		if err != nil {
			return false
		}
		Y := map[int]bool{}
		for a := 0; a < nx; a++ {
			if rng.Intn(2) == 0 {
				Y[a] = true
			}
		}
		v := u.VVSForRoots(forest, Y)
		abs := v.Apply(s)
		return abs.Size() == u.Claim23Size(Y) && abs.Granularity() == u.Claim23Granularity(Y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Claim 25: abstraction never empties the polynomial (coefficients are
// positive, so monomials merge but never cancel).
func TestClaim25Positive(t *testing.T) {
	u := example17()
	vb := provenance.NewVocab()
	s, _ := u.Build(vb)
	f, _ := u.FlatForest()
	for mask := 0; mask < 1<<len(u.X); mask++ {
		Y := map[int]bool{}
		for a := range u.X {
			if mask&(1<<a) != 0 {
				Y[a] = true
			}
		}
		if got := u.VVSForRoots(f, Y).Apply(s).Size(); got <= 0 {
			t.Errorf("mask %b: |P↓S|_M = %d, want > 0", mask, got)
		}
	}
}

func TestGraphValidate(t *testing.T) {
	bad := []Graph{
		{N: 1, Edges: [][2]int{{0, 0}}},
		{N: 3, Edges: nil},
		{N: 3, Edges: [][2]int{{1, 1}}},
		{N: 3, Edges: [][2]int{{0, 5}}},
		{N: 3, Edges: [][2]int{{0, 1}, {1, 0}}},
	}
	for i, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("bad graph %d accepted", i)
		}
	}
	good := Graph{N: 3, Edges: [][2]int{{2, 0}, {1, 2}}}
	if err := good.Validate(); err != nil {
		t.Errorf("good graph rejected: %v", err)
	}
	// Normalization orders endpoints.
	if good.Edges[0][0] != 0 || good.Edges[0][1] != 2 {
		t.Errorf("edge not normalized: %v", good.Edges[0])
	}
}

func TestVertexCoverBrute(t *testing.T) {
	// Triangle: minimum cover 2.
	tri := Graph{N: 3, Edges: [][2]int{{0, 1}, {1, 2}, {0, 2}}}
	if tri.HasVertexCoverOfSize(1) {
		t.Error("triangle covered by 1 vertex")
	}
	if !tri.HasVertexCoverOfSize(2) {
		t.Error("triangle not covered by 2 vertices")
	}
	// Star: center covers everything.
	star := Graph{N: 4, Edges: [][2]int{{0, 1}, {0, 2}, {0, 3}}}
	if !star.HasVertexCoverOfSize(1) {
		t.Error("star not covered by its center")
	}
}

// TestLemma29BothDirections validates the reduction: G has a vertex cover
// of size k iff the UPP has a precise flat abstraction for K = (|V|−k)·n+k
// and some B ∈ {2..|V|²·n}. Claims 18/23 make the right-hand side cheap to
// evaluate; TestQuickClaims ties the claims to real substitution.
func TestLemma29BothDirections(t *testing.T) {
	graphs := []Graph{
		{N: 3, Edges: [][2]int{{0, 1}, {1, 2}, {0, 2}}},                 // triangle
		{N: 4, Edges: [][2]int{{0, 1}, {0, 2}, {0, 3}}},                 // star
		{N: 4, Edges: [][2]int{{0, 1}, {1, 2}, {2, 3}}},                 // path
		{N: 5, Edges: [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}}}, // cycle
	}
	for gi, g := range graphs {
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
		u, err := Reduce(g, 0) // paper blowup |V|³
		if err != nil {
			t.Fatal(err)
		}
		for k := 2; k < g.N; k++ {
			want := g.HasVertexCoverOfSize(k)
			got := u.ExistsPreciseForK(Lemma29K(g, u, k), Lemma29MaxB(g, u))
			if got != want {
				t.Errorf("graph %d k=%d: reduction says %v, vertex cover says %v", gi, k, got, want)
			}
		}
	}
}

// Property: Lemma 29 holds on random graphs without isolated vertices.
func TestQuickLemma29(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(3) + 3 // 3..5 nodes
		g := Graph{N: n}
		touched := make([]bool, n)
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				if rng.Intn(2) == 0 {
					g.Edges = append(g.Edges, [2]int{a, b})
					touched[a], touched[b] = true, true
				}
			}
		}
		// Ensure no isolated vertices (Claim 23's granularity counts only
		// participating metavariables) and at least one edge.
		for a := 0; a < n; a++ {
			if !touched[a] {
				b := (a + 1) % n
				g.Edges = append(g.Edges, [2]int{min(a, b), max(a, b)})
				touched[a], touched[b] = true, true
			}
		}
		if g.Validate() != nil {
			return true // duplicate edge from the fix-up pass; skip
		}
		u, err := Reduce(g, 0)
		if err != nil {
			return false
		}
		for k := 2; k < n; k++ {
			if u.ExistsPreciseForK(Lemma29K(g, u, k), Lemma29MaxB(g, u)) != g.HasVertexCoverOfSize(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestReductionOnRealPolynomials runs the reduction with a small blowup and
// checks the decisive direction against actual substitution rather than the
// claims: a triangle has no VC of size 1, so no flat abstraction attains
// K = (3−1)·n+1 within the size budget.
func TestReductionOnRealPolynomials(t *testing.T) {
	tri := Graph{N: 3, Edges: [][2]int{{0, 1}, {1, 2}, {0, 2}}}
	u, err := Reduce(tri, 4) // smallest blowup > |E| keeps the polynomial tiny
	if err != nil {
		t.Fatal(err)
	}
	vb := provenance.NewVocab()
	s, err := u.Build(vb)
	if err != nil {
		t.Fatal(err)
	}
	forest, err := u.FlatForest()
	if err != nil {
		t.Fatal(err)
	}
	maxB := Lemma29MaxB(tri, u)
	for k := 1; k < 3; k++ {
		K := Lemma29K(tri, u, k)
		found := false
		for mask := 0; mask < 8; mask++ {
			Y := map[int]bool{}
			for a := 0; a < 3; a++ {
				if mask&(1<<a) != 0 {
					Y[a] = true
				}
			}
			abs := u.VVSForRoots(forest, Y).Apply(s)
			if abs.Granularity() == K && abs.Size() >= 2 && abs.Size() <= maxB {
				found = true
			}
		}
		if want := tri.HasVertexCoverOfSize(k); found != want {
			t.Errorf("k=%d: real-polynomial search %v, vertex cover %v", k, found, want)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
