package registry

import (
	"bytes"
	"fmt"
	"math"
	"sync/atomic"
	"testing"
	"time"

	"provabs/internal/durable"
	"provabs/internal/session"
)

// TestAggregateStatsMerge pins the documented pool-merge contract: the
// per-session map is the source of truth, a session reported by two
// backends (the export→delete window of a live migration) counts once
// with the further-along copy winning, the totals are re-derived from the
// merged map so nothing is double-counted, and the per-process gauges
// (Default) don't pretend to be pool-wide.
func TestAggregateStatsMerge(t *testing.T) {
	a := AggregateStats{
		Sessions: 2,
		Default:  "alpha",
		PerSession: map[string]session.Stats{
			"alpha":  {Scenarios: 10, Queries: 3, Added: 2},
			"shared": {Scenarios: 5, Queries: 1},
		},
		Recoveries: 1,
		WALRecords: 7,
		Dormant:    []string{"cold-a", "cold-shared"},
	}
	b := AggregateStats{
		Sessions: 2,
		Default:  "beta",
		PerSession: map[string]session.Stats{
			"beta": {Scenarios: 4, Batches: 2},
			// The migrated copy: further along than a's view of it.
			"shared": {Scenarios: 9, Queries: 2},
		},
		Recoveries: 2,
		WALRecords: 11,
		Dormant:    []string{"cold-b", "cold-shared"},
	}
	a.Merge(b)

	if a.Sessions != 3 {
		t.Errorf("Sessions = %d, want 3 (shared counted once)", a.Sessions)
	}
	if got := a.PerSession["shared"].Scenarios; got != 9 {
		t.Errorf("shared.Scenarios = %d, want 9 (further-along copy wins)", got)
	}
	if a.Default != "" {
		t.Errorf("Default = %q, want cleared — it is a per-process gauge", a.Default)
	}

	// Totals must equal the accumulation of the deduplicated map — nothing
	// more (no double-count of shared), nothing less.
	var want session.Stats
	for _, st := range a.PerSession {
		want.Accumulate(st)
	}
	if a.Totals.Scenarios != want.Scenarios || a.Totals.Queries != want.Queries ||
		a.Totals.Batches != want.Batches || a.Totals.Added != want.Added {
		t.Errorf("Totals = %+v, want re-derived %+v", a.Totals, want)
	}
	if a.Totals.Scenarios != 10+4+9 {
		t.Errorf("Totals.Scenarios = %d, want 23 (10 + 4 + 9, shared once)", a.Totals.Scenarios)
	}

	if a.Recoveries != 3 || a.WALRecords != 18 {
		t.Errorf("counters = (%d, %d), want summed (3, 18)", a.Recoveries, a.WALRecords)
	}
	wantDormant := []string{"cold-a", "cold-b", "cold-shared"}
	if len(a.Dormant) != len(wantDormant) {
		t.Fatalf("Dormant = %v, want deduplicated sorted %v", a.Dormant, wantDormant)
	}
	for i := range wantDormant {
		if a.Dormant[i] != wantDormant[i] {
			t.Fatalf("Dormant = %v, want %v", a.Dormant, wantDormant)
		}
	}
}

// TestMergeIntoZero checks merging into a zero value (the pool
// aggregation loop's starting state) just takes the payload.
func TestMergeIntoZero(t *testing.T) {
	var agg AggregateStats
	agg.Merge(AggregateStats{
		Sessions:   1,
		Default:    "only",
		PerSession: map[string]session.Stats{"only": {Scenarios: 2}},
	})
	if agg.Sessions != 1 || agg.Totals.Scenarios != 2 || agg.PerSession["only"].Scenarios != 2 {
		t.Fatalf("merge into zero = %+v", agg)
	}
}

// TestExportWhileAdding races Session.Export against a stream of tagged
// adds on the same session and demands a consistent snapshot: the export
// must capture an exact prefix of the add sequence — every add
// acknowledged before the export began is in it (acked ⊆ exported), no
// add is half-applied, and nothing past the cut leaks in. The restored
// copy must answer bit-identically to a reference engine fed the same
// prefix.
func TestExportWhileAdding(t *testing.T) {
	reg := New()
	sess, err := reg.Create("live", testSet("pa"), testForest(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Engine().Compress(4); err != nil {
		t.Fatal(err)
	}

	// polySrc makes add i's polynomial: distinct coefficients so any
	// missing, duplicated, or reordered add changes the answers.
	polySrc := func(i int) string { return fmt.Sprintf("%d·p1·m1 + %d·f1·m3", i+2, 2*i+3) }

	const total = 300
	var acked atomic.Int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < total; i++ {
			if err := sess.AddText(fmt.Sprintf("add-%d", i), polySrc(i)); err != nil {
				t.Errorf("add %d: %v", i, err)
				return
			}
			acked.Store(int64(i + 1))
		}
	}()

	// Export twice mid-stream — once early, once late — plus once after the
	// writer finishes (the quiesced case a live migration actually uses).
	type capture struct {
		ackedBefore int64
		buf         bytes.Buffer
	}
	var captures []*capture
	for _, threshold := range []int64{total / 4, total * 3 / 4} {
		for acked.Load() < threshold {
			time.Sleep(time.Millisecond)
		}
		c := &capture{ackedBefore: acked.Load()}
		if err := sess.Export(&c.buf); err != nil {
			t.Fatal(err)
		}
		captures = append(captures, c)
	}
	<-done
	final := &capture{ackedBefore: total}
	if err := sess.Export(&final.buf); err != nil {
		t.Fatal(err)
	}
	captures = append(captures, final)

	for ci, c := range captures {
		st, _, err := durable.DecodeSnapshot(bytes.NewReader(c.buf.Bytes()))
		if err != nil {
			t.Fatalf("capture %d: decode: %v", ci, err)
		}
		eng, err := session.Restore(st)
		if err != nil {
			t.Fatalf("capture %d: restore: %v", ci, err)
		}
		k := eng.Stats().Polynomials - 1 // minus the base testSet polynomial
		if int64(k) < c.ackedBefore {
			t.Fatalf("capture %d: snapshot holds %d adds, but %d were acked before the export began", ci, k, c.ackedBefore)
		}
		if k > total {
			t.Fatalf("capture %d: snapshot holds %d adds, more than the %d ever made", ci, k, total)
		}

		// The restored copy must answer exactly like a reference engine fed
		// the same k-add prefix — a torn or reordered capture shows up as a
		// bit-level mismatch.
		ref, err := reg.Create(fmt.Sprintf("ref-%d", ci), testSet("pa"), testForest(t))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ref.Engine().Compress(4); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < k; i++ {
			if err := ref.AddText(fmt.Sprintf("add-%d", i), polySrc(i)); err != nil {
				t.Fatal(err)
			}
		}
		imp, err := reg.Adopt(fmt.Sprintf("imported-%d", ci), eng)
		if err != nil {
			t.Fatal(err)
		}
		got, want := answers(t, imp), answers(t, ref)
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("capture %d (k=%d): answer %d = %v, want %v — snapshot is not a consistent prefix",
					ci, k, i, got[i], want[i])
			}
		}
		if s := imp.Engine().Stats(); s.Compiles != 1 {
			t.Fatalf("capture %d: imported Compiles = %d, want 1 (snapshot carries the compiled form)", ci, s.Compiles)
		}
	}
}
