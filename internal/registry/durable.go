package registry

// Durable registry: sessions survive process restarts. EnableDurability
// attaches a durable.Store; from then on every Create writes an initial
// snapshot, every Session.Add is write-ahead logged before it is
// acknowledged, and on-disk sessions from a previous process appear as
// *dormant* names that recover lazily — the first Get (or Default) that
// touches one replays its snapshot + WAL into a live Engine. A warm
// restart therefore pays recovery cost only for the sessions actually
// used, and Stats reports how much replaying happened (Recoveries,
// WALRecords).

import (
	"fmt"
	"io"
	"sort"

	"provabs/internal/durable"
	"provabs/internal/provenance"
	"provabs/internal/session"
)

// EnableDurability attaches a durable store rooted at root. Sessions
// already on disk become dormant: listed in Stats, recovered on first
// touch with recoverOpts as their engine options (engine tuning is
// per-process, not persisted). When no default is designated, the first
// dormant name (sorted) becomes the default, so a warm-restarted server
// keeps answering unversioned routes without re-loading anything.
func (r *Registry) EnableDurability(root string, dopts durable.Options, recoverOpts ...session.Option) error {
	store, err := durable.NewStore(root, dopts)
	if err != nil {
		return err
	}
	names, err := store.List()
	if err != nil {
		return fmt.Errorf("registry: list durable sessions: %w", err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.store != nil {
		return fmt.Errorf("registry: durability already enabled")
	}
	r.store = store
	r.recoverOpts = recoverOpts
	r.dormant = make(map[string]bool)
	for _, n := range names {
		if _, live := r.sessions[n]; !live && store.Exists(n) {
			r.dormant[n] = true
		}
	}
	if r.defaultName == "" && len(r.dormant) > 0 {
		sorted := make([]string, 0, len(r.dormant))
		for n := range r.dormant {
			sorted = append(sorted, n)
		}
		sort.Strings(sorted)
		r.defaultName = sorted[0]
	}
	return nil
}

// Durable reports whether the registry persists sessions.
func (r *Registry) Durable() bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.store != nil
}

// DormantNames returns the on-disk sessions not yet recovered, sorted.
func (r *Registry) DormantNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.dormant))
	for n := range r.dormant {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// recoverDormant replays a dormant session into a live one. It holds the
// registry write lock for the whole replay: recovery happens once per
// session per process (typically at the first request after a warm
// restart), and serializing it is what makes the lost-the-race recheck
// trivially correct.
func (r *Registry) recoverDormant(name string) (*Session, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.sessions[name]; ok {
		return s, nil
	}
	if r.store == nil || !r.dormant[name] {
		return nil, fmt.Errorf("registry: session %q: %w", name, ErrNotFound)
	}
	eng, ss, info, err := r.store.Recover(name, r.recoverOpts...)
	if err != nil {
		return nil, fmt.Errorf("registry: recover session %q: %w", name, err)
	}
	delete(r.dormant, name)
	s := newSession(name, eng)
	s.store = ss
	r.sessions[name] = s
	if r.defaultName == "" {
		r.defaultName = name
	}
	r.recoveries.Add(1)
	r.walRecords.Add(info.WALRecords)
	return s, nil
}

// Adopt registers an already-open engine under name — the import path for
// sessions restored from an exported snapshot. Under durability the
// adopted session gets its own on-disk state, starting with an initial
// snapshot of the engine as imported.
func (r *Registry) Adopt(name string, eng *session.Engine) (*Session, error) {
	if err := validateName(name); err != nil {
		return nil, err
	}
	if eng == nil {
		return nil, fmt.Errorf("registry: Adopt needs an engine")
	}
	return r.register(name, eng)
}

// Shutdown checkpoints every durable session (final snapshot + fsync) and
// closes the registry — the graceful half of the crash-recovery story: a
// clean exit leaves every session recoverable from its snapshot alone,
// with an empty WAL.
func (r *Registry) Shutdown() error {
	var firstErr error
	for _, s := range r.List() {
		if err := s.Checkpoint(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	r.CloseAll()
	return firstErr
}

// Durable reports whether this session's adds are persisted.
func (s *Session) Durable() bool { return s.store != nil }

// Add appends a polynomial to the session. Under durability the add is
// write-ahead logged, applied, and fsynced (subject to the store's
// group-commit window) before Add returns nil — an acknowledged add
// survives any subsequent crash. The store performs the {log, apply} pair
// atomically so WAL order equals apply order and a concurrent snapshot
// rotation can never cover a sequence whose add is missing; the fsync wait
// happens outside that critical section so group commit can batch
// concurrent adds.
//
// A persistence error fails the session for writes (see PersistErr): once
// the fsync wait fails, the in-memory engine holds an add that was never
// durable, and accepting more writes would silently widen the gap between
// live and recovered answers. Reads keep working; a restart recovers the
// session from its durable state (without the failed add).
func (s *Session) Add(tag string, p *provenance.Polynomial) error {
	if s.store == nil {
		s.eng.Add(tag, p)
		return nil
	}
	if err := s.PersistErr(); err != nil {
		return err
	}
	wait, err := s.store.Add(s.eng, tag, p)
	if err != nil {
		return s.failPersistence(err)
	}
	if err := wait(); err != nil {
		return s.failPersistence(err)
	}
	s.store.RotateIfNeeded(s.eng)
	return nil
}

// PersistErr returns the sticky persistence failure, if any. A non-nil
// error means a WAL write or fsync failed: the session refuses further
// writes because its in-memory state can no longer be guaranteed durable.
// Only a process restart (recovering from the durable state) clears it.
func (s *Session) PersistErr() error {
	s.failMu.Lock()
	defer s.failMu.Unlock()
	return s.persistErr
}

// failPersistence records a persistence failure, closes the WAL so no
// later append can land past the hole, and returns the sticky error every
// subsequent write will see.
func (s *Session) failPersistence(err error) error {
	s.failMu.Lock()
	defer s.failMu.Unlock()
	if s.persistErr == nil {
		s.persistErr = fmt.Errorf("registry: session %q persistence failed, writes disabled until restart: %w", s.name, err)
		s.store.Close()
	}
	return s.persistErr
}

// AddText parses a polynomial in text form ("2·x·y + 3·z"), interning any
// new variables, and applies it durably — the ingestion entry point for
// the HTTP add stream.
func (s *Session) AddText(tag, src string) error {
	p, err := s.eng.ParsePoly(src)
	if err != nil {
		return err
	}
	return s.Add(tag, p)
}

// Checkpoint writes a fresh snapshot and truncates the WAL. A no-op
// without durability; refused after a persistence failure (the WAL can no
// longer vouch for what is durable).
func (s *Session) Checkpoint() error {
	if s.store == nil {
		return nil
	}
	if err := s.PersistErr(); err != nil {
		return err
	}
	return s.store.WriteSnapshot(s.eng)
}

// Export writes the session's state as a self-contained snapshot — the
// same format the durable store rotates on disk — usable as a backup or
// as the body of a create-from-export import. Works with or without
// durability; the engine's read lock holds the state consistent.
func (s *Session) Export(w io.Writer) error {
	return s.eng.WithState(func(st *session.SnapshotState) error {
		return durable.EncodeSnapshot(w, st, 0)
	})
}

// WALStats reports the session's WAL size in bytes and records (zeros
// without durability).
func (s *Session) WALStats() (size, records int64) {
	if s.store == nil {
		return 0, 0
	}
	return s.store.WALStats()
}
