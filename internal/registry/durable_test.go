package registry

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"provabs/internal/durable"
	"provabs/internal/durable/faultfs"
	"provabs/internal/hypo"
	"provabs/internal/session"
)

// durableReg returns a registry persisting into root.
func durableReg(t *testing.T, root string) *Registry {
	t.Helper()
	reg := New()
	if err := reg.EnableDurability(root, durable.Options{}); err != nil {
		t.Fatal(err)
	}
	return reg
}

func answers(t *testing.T, s *Session) []float64 {
	t.Helper()
	rows, err := s.Engine().WhatIfBatch([]*hypo.Scenario{
		hypo.NewScenario().Set("p1", 0.5),
		hypo.NewScenario().Set("f1", 2).Set("m1", 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	var out []float64
	for _, row := range rows {
		for _, a := range row {
			out = append(out, a.Value)
		}
	}
	return out
}

func TestWarmRestartLazyRecovery(t *testing.T) {
	root := t.TempDir()
	reg := durableReg(t, root)

	a, err := reg.Create("alpha", testSet("pa"), testForest(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Create("beta", testSet("pb"), nil); err != nil {
		t.Fatal(err)
	}
	if err := a.AddText("added", "3·p1·m1 + 5·extra"); err != nil {
		t.Fatal(err)
	}
	want := answers(t, a)
	if err := reg.Shutdown(); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh registry over the same root. Both sessions are
	// dormant; nothing is recovered until touched.
	reg2 := durableReg(t, root)
	if got := reg2.DormantNames(); len(got) != 2 {
		t.Fatalf("DormantNames = %v, want [alpha beta]", got)
	}
	if st := reg2.Stats(); st.Recoveries != 0 || st.Sessions != 0 || len(st.Dormant) != 2 {
		t.Fatalf("pre-touch stats = %+v", st)
	}
	// The first dormant name (sorted) is the default after a warm restart.
	if got := reg2.DefaultName(); got != "alpha" {
		t.Fatalf("DefaultName = %q, want alpha", got)
	}

	s, err := reg2.Default()
	if err != nil {
		t.Fatal(err)
	}
	got := answers(t, s)
	if len(got) != len(want) {
		t.Fatalf("recovered %d answers, want %d", len(got), len(want))
	}
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("answer %d = %v, want %v (bit-exact)", i, got[i], want[i])
		}
	}
	if st := s.Engine().Stats(); st.Compiles != 1 {
		t.Fatalf("recovered Compiles = %d, want 1", st.Compiles)
	}
	st := reg2.Stats()
	if st.Recoveries != 1 || st.Sessions != 1 || len(st.Dormant) != 1 || st.Dormant[0] != "beta" {
		t.Fatalf("post-touch stats = %+v, want 1 recovery, beta still dormant", st)
	}
	// Clean shutdown rotated the WAL into the snapshot: recovery replayed
	// zero records.
	if st.WALRecords != 0 {
		t.Fatalf("replayed %d WAL records after clean shutdown, want 0", st.WALRecords)
	}

	// A dormant name conflicts with Create like a live one.
	if _, err := reg2.Create("beta", testSet("pb2"), nil); !errors.Is(err, ErrExists) {
		t.Fatalf("Create over dormant = %v, want ErrExists", err)
	}
}

func TestUncleanRestartReplaysWAL(t *testing.T) {
	root := t.TempDir()
	reg := durableReg(t, root)
	a, err := reg.Create("s", testSet("pa"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.AddText("w1", "2·p1 + 1·f1"); err != nil {
		t.Fatal(err)
	}
	if err := a.AddText("w2", "4·m1·m3"); err != nil {
		t.Fatal(err)
	}
	want := answers(t, a)
	// No Shutdown: the process "dies" with the WAL un-rotated.

	reg2 := durableReg(t, root)
	s, err := reg2.Get("s")
	if err != nil {
		t.Fatal(err)
	}
	got := answers(t, s)
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("answer %d = %v, want %v", i, got[i], want[i])
		}
	}
	if st := reg2.Stats(); st.WALRecords < 2 {
		t.Fatalf("replayed %d WAL records, want >= 2 (adds were not rotated)", st.WALRecords)
	}
}

func TestCloseDropsDurableState(t *testing.T) {
	root := t.TempDir()
	reg := durableReg(t, root)
	if _, err := reg.Create("gone", testSet("pa"), nil); err != nil {
		t.Fatal(err)
	}
	if err := reg.Close("gone"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "sessions", "gone")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("durable state survived Close: %v", err)
	}
	// Deleting a dormant session works without recovering it.
	if _, err := reg.Create("gone2", testSet("pb"), nil); err != nil {
		t.Fatal(err)
	}
	reg.Shutdown()
	reg2 := durableReg(t, root)
	if err := reg2.Close("gone2"); err != nil {
		t.Fatal(err)
	}
	if got := reg2.DormantNames(); len(got) != 0 {
		t.Fatalf("DormantNames after dormant delete = %v", got)
	}
}

func TestExportAdoptRoundTrip(t *testing.T) {
	reg := New() // export works without durability
	a, err := reg.Create("orig", testSet("pa"), testForest(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Engine().Compress(4); err != nil {
		t.Fatal(err)
	}
	want := answers(t, a)

	var buf bytes.Buffer
	if err := a.Export(&buf); err != nil {
		t.Fatal(err)
	}
	st, _, err := durable.DecodeSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := session.Restore(st)
	if err != nil {
		t.Fatal(err)
	}
	imp, err := reg.Adopt("imported", eng)
	if err != nil {
		t.Fatal(err)
	}
	got := answers(t, imp)
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("imported answer %d = %v, want %v", i, got[i], want[i])
		}
	}
	if s := imp.Engine().Stats(); s.Compiles != 1 || !s.Compressed {
		t.Fatalf("imported stats = %+v, want Compiles 1 and Compressed", s)
	}
}

// TestSnapshotDuringConcurrentAddsLosesNothing pins the {log, apply}
// atomicity invariant: snapshot rotations racing with concurrent adds
// (explicit Checkpoints plus RotateIfNeeded tripping every few records)
// must never capture a sequence number whose add is missing from the
// captured engine state — recovery after an unclean stop answers exactly
// like the live session did.
func TestSnapshotDuringConcurrentAddsLosesNothing(t *testing.T) {
	root := t.TempDir()
	reg := New()
	if err := reg.EnableDurability(root, durable.Options{RotateRecords: 4}); err != nil {
		t.Fatal(err)
	}
	s, err := reg.Create("s", testSet("pa"), nil)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				src := fmt.Sprintf("2·p1 + %d·g%dx%d", i+1, g, i)
				if err := s.AddText(fmt.Sprintf("g%d-%d", g, i), src); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	done := make(chan struct{})
	var cp sync.WaitGroup
	cp.Add(1)
	go func() {
		defer cp.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if err := s.Checkpoint(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	close(done)
	cp.Wait()
	if t.Failed() {
		t.FailNow()
	}
	want := answers(t, s)

	// Unclean stop: no Shutdown, so whatever the last rotation left on
	// disk (snapshot + WAL tail) is what recovery gets.
	reg.CloseAll()
	reg2 := durableReg(t, root)
	s2, err := reg2.Get("s")
	if err != nil {
		t.Fatal(err)
	}
	got := answers(t, s2)
	if len(got) != len(want) {
		t.Fatalf("recovered %d answers, want %d", len(got), len(want))
	}
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("answer %d = %v, want %v (an acknowledged add was lost)", i, got[i], want[i])
		}
	}
}

// TestPersistenceFailureFailsSessionWrites pins the failure discipline: a
// WAL write/fsync error marks the session write-failed — further adds and
// checkpoints refuse with a sticky error even if the disk "heals", and
// reads keep serving the pre-failure state.
func TestPersistenceFailureFailsSessionWrites(t *testing.T) {
	fs := faultfs.New()
	reg := New()
	if err := reg.EnableDurability("root", durable.Options{FS: fs}); err != nil {
		t.Fatal(err)
	}
	s, err := reg.Create("s", testSet("pa"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddText("ok", "2·p1 + 1·f1"); err != nil {
		t.Fatal(err)
	}
	pre := answers(t, s)

	fs.StopAfter(0) // the disk dies: every further mutating op fails
	if err := s.AddText("lost", "3·m1"); err == nil {
		t.Fatal("Add over a dead disk succeeded")
	}
	if s.PersistErr() == nil {
		t.Fatal("PersistErr = nil after a failed add")
	}
	fs.StopAfter(-1) // the disk heals — the failure must stay sticky
	if err := s.AddText("after", "1·p1"); err == nil {
		t.Fatal("Add after persistence failure succeeded, want sticky refusal")
	}
	if err := s.Checkpoint(); err == nil {
		t.Fatal("Checkpoint after persistence failure succeeded, want sticky refusal")
	}
	got := answers(t, s)
	for i := range pre {
		if math.Float64bits(got[i]) != math.Float64bits(pre[i]) {
			t.Fatalf("read answer %d changed after failed add: %v, want %v", i, got[i], pre[i])
		}
	}
}

func TestValidateNameRejectsPathSeparators(t *testing.T) {
	reg := New()
	for _, bad := range []string{`\`, `..\..`, `a\b`, "a/b"} {
		if _, err := reg.Create(bad, testSet("p"), nil); err == nil {
			t.Fatalf("Create(%q) succeeded, want error", bad)
		}
	}
}

func TestValidateNameRejectsDots(t *testing.T) {
	reg := New()
	for _, bad := range []string{".", "..", ".hidden"} {
		if _, err := reg.Create(bad, testSet("p"), nil); err == nil {
			t.Fatalf("Create(%q) succeeded, want error", bad)
		}
	}
}
