// Package registry hosts many named session Engines in one process — the
// multi-tenant side of the paper's compress-once/ask-many workload. Each
// provenance set (a tenant, a dataset, a benchmark query) lives in its own
// named Session wrapping a session.Engine, with independent abstraction,
// cached compilation and counters; the Registry owns their lifecycle:
//
//	reg := registry.New()
//	sess, _ := reg.Create("telco", set, forest)      // first Create is the default
//	sess.Engine().Compress(B, ...)
//	reg.Get("telco")                                 // route a request
//	reg.List()                                       // enumerate, name-sorted
//	reg.Stats()                                      // aggregate across sessions
//	reg.Close("telco")                               // tear down (ends streams)
//
// Closing a session cancels its context (Session.Done), which long-lived
// consumers — the HTTP stream handler in internal/server, queue ingesters —
// watch to tear down in-flight scenario streams promptly. One session is
// designated the default (the first created, or SetDefault); the server's
// legacy unversioned routes alias onto it.
//
// All methods are safe for concurrent use.
package registry

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"provabs/internal/abstree"
	"provabs/internal/durable"
	"provabs/internal/provenance"
	"provabs/internal/session"
)

// ErrExists reports a Create against a name already in use. The HTTP layer
// maps it to 409 Conflict.
var ErrExists = errors.New("session already exists")

// ErrNotFound reports a lookup of a name with no live session. The HTTP
// layer maps it to 404 Not Found.
var ErrNotFound = errors.New("session not found")

// ErrNoDefault reports that no default session is designated — the
// registry is empty, or the default was closed without a replacement.
var ErrNoDefault = errors.New("no default session")

// Session is one named tenant: a session.Engine plus the registry-level
// lifecycle around it.
type Session struct {
	name    string
	created time.Time
	eng     *session.Engine
	ctx     context.Context
	cancel  context.CancelFunc

	// Durable side (nil without EnableDurability). The store serializes
	// each {WAL log, engine apply} pair internally so log order equals
	// apply order — the invariant recovery replays against. A persistence
	// failure is sticky (persistErr): the engine may be ahead of the log,
	// so further writes are refused until a restart recovers from durable
	// state.
	store      *durable.SessionStore
	failMu     sync.Mutex
	persistErr error
}

// newSession wraps an engine in the registry-level lifecycle.
func newSession(name string, eng *session.Engine) *Session {
	ctx, cancel := context.WithCancel(context.Background())
	return &Session{name: name, created: time.Now(), eng: eng, ctx: ctx, cancel: cancel}
}

// Name returns the session's registry name.
func (s *Session) Name() string { return s.name }

// Engine returns the underlying session Engine.
func (s *Session) Engine() *session.Engine { return s.eng }

// Created returns when the session was registered.
func (s *Session) Created() time.Time { return s.created }

// Done is closed when the session is closed, so long-lived consumers
// (scenario streams, queue ingesters) can tear down promptly.
func (s *Session) Done() <-chan struct{} { return s.ctx.Done() }

// Closed reports whether the session has been closed.
func (s *Session) Closed() bool {
	select {
	case <-s.ctx.Done():
		return true
	default:
		return false
	}
}

// Registry owns a process's named sessions.
type Registry struct {
	mu          sync.RWMutex
	sessions    map[string]*Session
	defaultName string

	// Durable side (nil/empty without EnableDurability). dormant holds
	// on-disk session names from a previous process, recovered lazily on
	// first touch.
	store       *durable.Store
	dormant     map[string]bool
	recoverOpts []session.Option
	recoveries  atomic.Int64
	walRecords  atomic.Int64
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{sessions: make(map[string]*Session)}
}

// validateName rejects names that cannot round-trip through a URL path
// segment of the v1 API.
func validateName(name string) error {
	if name == "" {
		return fmt.Errorf("registry: session name must not be empty")
	}
	if strings.ContainsAny(name, "/\\?#% \t\r\n") {
		return fmt.Errorf("registry: session name %q contains a reserved character (no slashes, backslashes, spaces or URL metacharacters)", name)
	}
	// Names become directory names under a durable store: a leading dot
	// would hide the directory (and "." / ".." would escape it).
	if strings.HasPrefix(name, ".") {
		return fmt.Errorf("registry: session name %q must not start with a dot", name)
	}
	return nil
}

// Create opens a new Engine over the provenance source and registers it
// under name. forest may be nil for an evaluation-only session; opts are
// the engine's Open-time options (workers, delta cutoff, stream tuning).
// The first session created becomes the registry default. A name already
// in use fails with ErrExists and leaves the existing session untouched.
func (r *Registry) Create(name string, set *provenance.Set, forest *abstree.Forest, opts ...session.Option) (*Session, error) {
	if err := validateName(name); err != nil {
		return nil, err
	}
	// Open validates set/forest compatibility before the registry commits
	// to the name, so a failed Create never occupies a slot.
	eng, err := session.Open(set, forest, opts...)
	if err != nil {
		return nil, err
	}
	return r.register(name, eng)
}

// register commits an engine to a name. Under durability it also writes
// the session's initial snapshot, holding the registry lock across it so
// the name is never observable without its on-disk state: a Create that
// cannot persist fails whole. Dormant names conflict like live ones — the
// on-disk session must be recovered or deleted first, never silently
// shadowed.
func (r *Registry) register(name string, eng *session.Engine) (*Session, error) {
	s := newSession(name, eng)
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.sessions[name]; ok || r.dormant[name] {
		s.cancel()
		return nil, fmt.Errorf("registry: session %q: %w", name, ErrExists)
	}
	if r.store != nil {
		ss, err := r.store.Create(name, eng)
		if err != nil {
			s.cancel()
			return nil, fmt.Errorf("registry: persist session %q: %w", name, err)
		}
		s.store = ss
	}
	r.sessions[name] = s
	if r.defaultName == "" {
		r.defaultName = name
	}
	return s, nil
}

// Get returns the session registered under name. A dormant session (on
// disk from a previous process, not yet recovered) is recovered here, on
// first touch.
func (r *Registry) Get(name string) (*Session, error) {
	r.mu.RLock()
	s, ok := r.sessions[name]
	dormant := !ok && r.dormant[name]
	r.mu.RUnlock()
	if ok {
		return s, nil
	}
	if dormant {
		return r.recoverDormant(name)
	}
	return nil, fmt.Errorf("registry: session %q: %w", name, ErrNotFound)
}

// List returns the live sessions sorted by name.
func (r *Registry) List() []*Session {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Session, 0, len(r.sessions))
	for _, s := range r.sessions {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Len returns the number of live sessions.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.sessions)
}

// Close removes the named session and cancels its context, so in-flight
// scenario streams over it terminate. Closing the default session leaves
// the registry with no default until SetDefault designates a new one.
func (r *Registry) Close(name string) error {
	r.mu.Lock()
	s, ok := r.sessions[name]
	if ok {
		delete(r.sessions, name)
		if r.defaultName == name {
			r.defaultName = ""
		}
	}
	dormant := false
	if !ok && r.dormant[name] {
		delete(r.dormant, name)
		dormant = true
	}
	store := r.store
	r.mu.Unlock()
	if dormant {
		// Deleting a dormant session removes its on-disk state without
		// recovering it first.
		return store.Drop(name)
	}
	if !ok {
		return fmt.Errorf("registry: session %q: %w", name, ErrNotFound)
	}
	s.cancel()
	if s.store != nil {
		// A deleted session must not come back dormant on the next restart:
		// close the WAL and drop the directory.
		s.store.Close()
		if err := store.Drop(name); err != nil {
			return err
		}
	}
	return nil
}

// CloseAll closes every session (a server shutdown). Unlike Close it
// leaves durable state on disk — the sessions come back dormant on the
// next start.
func (r *Registry) CloseAll() {
	r.mu.Lock()
	sessions := r.sessions
	r.sessions = make(map[string]*Session)
	r.defaultName = ""
	r.mu.Unlock()
	for _, s := range sessions {
		s.cancel()
		if s.store != nil {
			s.store.Close()
		}
	}
}

// SetDefault designates the session the legacy unversioned routes alias
// onto. The named session must exist.
func (r *Registry) SetDefault(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.sessions[name]; !ok && !r.dormant[name] {
		return fmt.Errorf("registry: session %q: %w", name, ErrNotFound)
	}
	r.defaultName = name
	return nil
}

// DefaultName returns the designated default session's name ("" if none).
func (r *Registry) DefaultName() string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.defaultName
}

// Default returns the designated default session, recovering it first if
// it is dormant.
func (r *Registry) Default() (*Session, error) {
	r.mu.RLock()
	name := r.defaultName
	r.mu.RUnlock()
	if name == "" {
		return nil, ErrNoDefault
	}
	s, err := r.Get(name)
	if err != nil {
		return nil, ErrNoDefault
	}
	return s, nil
}

// AggregateStats is the registry-wide view served by GET /v1/stats:
// per-session snapshots plus one Totals row summing every counter
// (scenarios, compiles, delta/full/sharded evaluations, stream batches)
// across tenants.
//
// The payload has a stable merge shape, because a gateway aggregates it
// across a pool of backend processes (see Merge):
//
//   - PerSession is the source of truth: one entry per session name, and a
//     session name identifies at most one live session pool-wide (the
//     gateway shards by name).
//   - Totals is derived — always exactly the Accumulate of PerSession —
//     so counters sum once per session and can never double-count, even
//     when two backends briefly report the same name (the export→delete
//     window of a live migration).
//   - Default is a per-process gauge with no pool-wide meaning; a merged
//     payload clears it. Per-backend values stay visible in the gateway's
//     per-backend breakdown.
//   - Recoveries/WALRecords are per-process counters that sum; Dormant is
//     a name union.
type AggregateStats struct {
	Sessions   int                      `json:"sessions"`
	Default    string                   `json:"default,omitempty"`
	Totals     session.Stats            `json:"totals"`
	PerSession map[string]session.Stats `json:"per_session"`

	// Durability counters (zero/empty without EnableDurability): sessions
	// recovered from disk this process, WAL records replayed doing so, and
	// on-disk sessions not yet touched.
	Recoveries int64    `json:"recoveries,omitempty"`
	WALRecords int64    `json:"wal_records_replayed,omitempty"`
	Dormant    []string `json:"dormant,omitempty"`
}

// Stats snapshots every live session and the cross-session totals. The
// registry lock is released before touching any engine: Engine.Stats
// blocks behind that engine's mutex (held exclusively for the whole of a
// Compress), and holding r.mu across it would let one tenant's slow
// compression stall session routing for everyone.
func (r *Registry) Stats() AggregateStats {
	r.mu.RLock()
	sessions := make(map[string]*Session, len(r.sessions))
	for name, s := range r.sessions {
		sessions[name] = s
	}
	defaultName := r.defaultName
	var dormant []string
	for n := range r.dormant {
		dormant = append(dormant, n)
	}
	r.mu.RUnlock()
	sort.Strings(dormant)
	agg := AggregateStats{
		Sessions:   len(sessions),
		Default:    defaultName,
		PerSession: make(map[string]session.Stats, len(sessions)),
		Recoveries: r.recoveries.Load(),
		WALRecords: r.walRecords.Load(),
		Dormant:    dormant,
	}
	for name, s := range sessions {
		st := s.eng.Stats()
		agg.PerSession[name] = st
		agg.Totals.Accumulate(st)
	}
	return agg
}

// Merge folds another registry's aggregate payload into a — the pool-wide
// view a gateway serves across backends. The contract (documented on
// AggregateStats) that makes the merge double-count-proof: entries merge
// by session name, and when two payloads both carry a name — the
// export→delete window of a live migration, when source and destination
// both report the session — the entry with the larger Scenarios counter
// wins (counters are monotonic on the long-lived copy; the freshly
// imported one starts its process-local counters at zero). Sessions and
// Totals are then re-derived from the merged PerSession map, so every
// session counts exactly once no matter how many backends reported it.
// Default, a per-process gauge, is cleared.
func (a *AggregateStats) Merge(o AggregateStats) {
	if a.PerSession == nil {
		a.PerSession = make(map[string]session.Stats, len(o.PerSession))
	}
	for name, st := range o.PerSession {
		if cur, ok := a.PerSession[name]; !ok || st.Scenarios > cur.Scenarios {
			a.PerSession[name] = st
		}
	}
	a.Sessions = len(a.PerSession)
	a.Totals = session.Stats{}
	for _, st := range a.PerSession {
		a.Totals.Accumulate(st)
	}
	a.Default = ""
	a.Recoveries += o.Recoveries
	a.WALRecords += o.WALRecords
	if len(o.Dormant) > 0 {
		have := make(map[string]bool, len(a.Dormant))
		for _, n := range a.Dormant {
			have[n] = true
		}
		for _, n := range o.Dormant {
			if !have[n] {
				a.Dormant = append(a.Dormant, n)
			}
		}
		sort.Strings(a.Dormant)
	}
}
