package registry

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"provabs/internal/abstree"
	"provabs/internal/hypo"
	"provabs/internal/provenance"
)

// testSet builds a small provenance set whose variables (m1, m3, q1 after
// compression) match the Year(q1(m1,m3)) tree used throughout the tests.
func testSet(tag string) *provenance.Set {
	vb := provenance.NewVocab()
	set := provenance.NewSet(vb)
	set.Add(tag, provenance.MustParse(vb,
		"220.8·p1·m1 + 240·p1·m3 + 127.4·f1·m1 + 114.45·f1·m3"))
	return set
}

func testForest(t *testing.T) *abstree.Forest {
	t.Helper()
	forest, err := abstree.NewForest(abstree.MustParseTree("Year(q1(m1,m3))"))
	if err != nil {
		t.Fatal(err)
	}
	return forest
}

func TestLifecycle(t *testing.T) {
	reg := New()
	if _, err := reg.Default(); !errors.Is(err, ErrNoDefault) {
		t.Fatalf("Default on empty registry: %v, want ErrNoDefault", err)
	}

	a, err := reg.Create("a", testSet("pa"), testForest(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Create("b", testSet("pb"), nil); err != nil {
		t.Fatal(err)
	}

	// First Create designates the default.
	if got := reg.DefaultName(); got != "a" {
		t.Errorf("DefaultName = %q, want a", got)
	}
	def, err := reg.Default()
	if err != nil || def != a {
		t.Errorf("Default = %v, %v, want session a", def, err)
	}

	// Duplicate names are rejected and leave the original untouched.
	if _, err := reg.Create("a", testSet("pa2"), nil); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate Create: %v, want ErrExists", err)
	}
	got, err := reg.Get("a")
	if err != nil || got != a {
		t.Errorf("Get after duplicate Create = %v, %v, want the original", got, err)
	}

	// List is name-sorted.
	list := reg.List()
	if len(list) != 2 || list[0].Name() != "a" || list[1].Name() != "b" {
		t.Errorf("List = %v, want [a b]", list)
	}
	if reg.Len() != 2 {
		t.Errorf("Len = %d, want 2", reg.Len())
	}

	// Close cancels the session context and unregisters the name.
	if a.Closed() {
		t.Error("session a closed before Close")
	}
	if err := reg.Close("a"); err != nil {
		t.Fatal(err)
	}
	select {
	case <-a.Done():
	default:
		t.Error("Close did not cancel the session context")
	}
	if !a.Closed() {
		t.Error("Closed() = false after Close")
	}
	if _, err := reg.Get("a"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get after Close: %v, want ErrNotFound", err)
	}
	if err := reg.Close("a"); !errors.Is(err, ErrNotFound) {
		t.Errorf("double Close: %v, want ErrNotFound", err)
	}

	// Closing the default leaves no default until SetDefault.
	if _, err := reg.Default(); !errors.Is(err, ErrNoDefault) {
		t.Errorf("Default after closing it: %v, want ErrNoDefault", err)
	}
	if err := reg.SetDefault("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("SetDefault(nope): %v, want ErrNotFound", err)
	}
	if err := reg.SetDefault("b"); err != nil {
		t.Fatal(err)
	}
	if got := reg.DefaultName(); got != "b" {
		t.Errorf("DefaultName after SetDefault = %q, want b", got)
	}

	reg.CloseAll()
	if reg.Len() != 0 || reg.DefaultName() != "" {
		t.Errorf("CloseAll left %d sessions, default %q", reg.Len(), reg.DefaultName())
	}
}

func TestCreateRejectsBadInputs(t *testing.T) {
	reg := New()
	for _, name := range []string{"", "a/b", "a b", "a?b", "a#b", "a%b"} {
		if _, err := reg.Create(name, testSet("p"), nil); err == nil {
			t.Errorf("Create(%q) succeeded, want name error", name)
		}
	}
	// A nil set fails in session.Open and must not occupy the name.
	if _, err := reg.Create("x", nil, nil); err == nil {
		t.Error("Create with nil set succeeded")
	}
	if _, err := reg.Get("x"); !errors.Is(err, ErrNotFound) {
		t.Errorf("failed Create occupied the name: %v", err)
	}
}

func TestStatsAggregation(t *testing.T) {
	reg := New()
	a, err := reg.Create("a", testSet("pa"), testForest(t))
	if err != nil {
		t.Fatal(err)
	}
	b, err := reg.Create("b", testSet("pb"), nil)
	if err != nil {
		t.Fatal(err)
	}
	whatif := func(s *Session, n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			sc := hypo.NewScenario().Set("m1", 0.5)
			if _, err := s.Engine().WhatIf(sc); err != nil {
				t.Fatal(err)
			}
		}
	}
	whatif(a, 3)
	whatif(b, 2)

	agg := reg.Stats()
	if agg.Sessions != 2 || agg.Default != "a" {
		t.Errorf("Sessions=%d Default=%q, want 2/a", agg.Sessions, agg.Default)
	}
	if len(agg.PerSession) != 2 {
		t.Fatalf("PerSession has %d entries, want 2", len(agg.PerSession))
	}
	if got := agg.PerSession["a"].Scenarios; got != 3 {
		t.Errorf("a scenarios = %d, want 3", got)
	}
	if got := agg.Totals.Scenarios; got != 5 {
		t.Errorf("total scenarios = %d, want 5", got)
	}
	if got := agg.Totals.Compiles; got != 2 {
		t.Errorf("total compiles = %d, want 2 (one per session)", got)
	}
	if got := agg.Totals.DeltaEvals + agg.Totals.FullEvals; got != 5 {
		t.Errorf("delta+full = %d, want 5", got)
	}
}

// TestConcurrentLifecycle hammers Create/WhatIfBatch/Close across session
// names from many goroutines; run under -race it pins the registry's
// concurrency safety.
func TestConcurrentLifecycle(t *testing.T) {
	reg := New()
	const names = 4
	const rounds = 15
	var wg sync.WaitGroup
	for g := 0; g < names; g++ {
		name := fmt.Sprintf("s%d", g)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				s, err := reg.Create(name, testSet(name), nil)
				if err != nil {
					t.Errorf("Create %s: %v", name, err)
					return
				}
				scs := []*hypo.Scenario{
					hypo.NewScenario().Set("m1", 0.5),
					hypo.NewScenario().Set("m3", 1.5),
				}
				if _, err := s.Engine().WhatIfBatch(scs); err != nil {
					t.Errorf("WhatIfBatch %s: %v", name, err)
					return
				}
				if err := reg.Close(name); err != nil {
					t.Errorf("Close %s: %v", name, err)
					return
				}
			}
		}()
		// A reader goroutine races Get/List/Stats against the lifecycle.
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if s, err := reg.Get(name); err == nil {
					_ = s.Engine().Stats()
				}
				_ = reg.List()
				_ = reg.Stats()
			}
		}()
	}
	wg.Wait()
	if reg.Len() != 0 {
		t.Errorf("registry not empty after all lifecycles: %d", reg.Len())
	}
}
