package summarize

import (
	"testing"
	"time"

	"provabs/internal/abstree"
	"provabs/internal/core"
	"provabs/internal/provenance"
)

func example13Set(t testing.TB) (*provenance.Set, *abstree.Forest) {
	t.Helper()
	vb := provenance.NewVocab()
	s := provenance.NewSet(vb)
	s.Add("P1", provenance.MustParse(vb,
		"220.8·p1·m1 + 240·p1·m3 + 127.4·f1·m1 + 114.45·f1·m3 + 75.9·y1·m1 + 72.5·y1·m3 + 42·v·m1 + 24.2·v·m3"))
	s.Add("P2", provenance.MustParse(vb,
		"77.9·b1·m1 + 80.5·b1·m3 + 52.2·e·m1 + 56.5·e·m3 + 69.7·b2·m1 + 100.65·b2·m3"))
	plans := abstree.MustParseTree("Plans(Std(p1,p2),Sp(Y(y1,y2,y3),F(f1,f2),v),B(SB(b1,b2),e))")
	year := abstree.MustParseTree("Year(q1(m1,m2,m3),q2(m4,m5,m6))")
	return s, abstree.MustForest(plans, year)
}

func TestSummarizeReachesBound(t *testing.T) {
	s, f := example13Set(t)
	res, err := Summarize(s, f, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Adequate {
		t.Fatalf("did not reach bound 4: ML=%d", res.ML)
	}
	if res.Abstracted.Size() > 4 {
		t.Errorf("abstracted size = %d > 4", res.Abstracted.Size())
	}
	if res.ML < 10 {
		t.Errorf("ML = %d, want >= 10", res.ML)
	}
	if res.OracleCalls == 0 || res.Rounds == 0 {
		t.Error("no oracle calls / rounds recorded")
	}
	// Groups never span trees: months and plans stay separate.
	for _, g := range res.Groups {
		hasMonth, hasPlan := false, false
		for _, m := range g {
			if m[0] == 'm' {
				hasMonth = true
			} else {
				hasPlan = true
			}
		}
		if hasMonth && hasPlan {
			t.Errorf("group %v mixes trees", g)
		}
	}
}

// TestQualityVersusOptimal mirrors the paper's quality comparison: the
// competitor's achieved granularity should be close to (and here can even
// match or exceed) the cut-optimal one, since its search space is larger.
func TestQualityVersusOptimal(t *testing.T) {
	s, f := example13Set(t)
	B := 4
	opt, err := core.BruteForceVVS(s, f, B, 0)
	if err != nil {
		t.Fatal(err)
	}
	prox, err := Summarize(s, f, B, Options{})
	if err != nil {
		t.Fatal(err)
	}
	optV := s.Granularity() - opt.VL
	proxV := s.Granularity() - prox.VL
	ratio := float64(proxV) / float64(optV)
	if ratio < 0.6 {
		t.Errorf("competitor granularity %d far below optimal %d (ratio %.2f)", proxV, optV, ratio)
	}
}

func TestSummarizeRespectsTimeout(t *testing.T) {
	s, f := example13Set(t)
	res, err := Summarize(s, f, 1, Options{Timeout: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	if !res.TimedOut && res.Adequate {
		// With a 1ns budget the run should either time out or stop short;
		// bound 1 is unreachable anyway (two polynomials).
		t.Errorf("result claims adequacy for unreachable bound: %+v", res)
	}
}

func TestSummarizeMaxRounds(t *testing.T) {
	s, f := example13Set(t)
	res, err := Summarize(s, f, 1, Options{MaxRounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds > 2 {
		t.Errorf("rounds = %d, want <= 2", res.Rounds)
	}
}

func TestSummarizeBadBound(t *testing.T) {
	s, f := example13Set(t)
	if _, err := Summarize(s, f, 0, Options{}); err == nil {
		t.Error("B=0 accepted")
	}
}

func TestSummarizeStopsWhenNothingMergeable(t *testing.T) {
	vb := provenance.NewVocab()
	s := provenance.NewSet(vb)
	s.Add("", provenance.MustParse(vb, "1·a + 2·b"))
	// Forest covering only variable a: nothing can pair up.
	f := abstree.MustForest(abstree.MustParseTree("T(a,zz)"))
	res, err := Summarize(s, f, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Adequate {
		t.Error("claims adequacy with no possible merge")
	}
	if res.Rounds != 0 {
		t.Errorf("rounds = %d, want 0", res.Rounds)
	}
}

// The ML accounting must match a recomputation from the returned set.
func TestSummarizeMLConsistent(t *testing.T) {
	s, f := example13Set(t)
	res, err := Summarize(s, f, 6, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Size() - res.Abstracted.Size(); got != res.ML {
		t.Errorf("reported ML %d, recomputed %d", res.ML, got)
	}
	if got := s.Granularity() - res.Abstracted.Granularity(); got != res.VL {
		t.Errorf("reported VL %d, recomputed %d", res.VL, got)
	}
}
