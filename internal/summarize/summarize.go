// Package summarize reimplements the black-box provenance-summarization
// algorithm of Ainy, Bourhis, Davidson, Deutch and Milo (CIKM 2015) — the
// competitor the paper compares against in §4.3 ("Gain of abstraction
// trees", Figure 12) under the name we keep here: Prox.
//
// The algorithm iteratively merges pairs of variable groups: each round it
// scores, through an oracle, the grouping of every pair of current groups
// and applies the best-scoring admissible merge, until the provenance size
// reaches the bound. Following the paper's experimental protocol, the
// abstraction forest serves as the oracle: a merge is admissible when the
// merged variables share a tree (the tree's leaf vocabulary is the semantic
// constraint), and the score is the monomial loss the merge induces. Unlike
// the paper's Algorithm 1/2 the search space is all pairwise-buildable
// groupings, not tree cuts — more general, but with no quality or runtime
// guarantees, which is exactly the contrast the paper draws.
package summarize

import (
	"fmt"
	"sort"
	"time"

	"provabs/internal/abstree"
	"provabs/internal/core"
	"provabs/internal/provenance"
)

// Options bounds the run. The paper reports the competitor "did not finish
// the computation on query 10 and the running example query within 24
// hours"; Timeout emulates that cutoff at benchmark scale.
type Options struct {
	Timeout   time.Duration // 0 = unlimited
	MaxRounds int           // 0 = unlimited
}

// Result reports the summarization outcome.
type Result struct {
	Groups      [][]string // final variable groups (size >= 2 only)
	ML, VL      int
	Adequate    bool // reached the bound
	TimedOut    bool
	OracleCalls int // pair scorings performed
	Rounds      int // merges applied
	Elapsed     time.Duration
	Abstracted  *provenance.Set
	// Subst maps each merged leaf variable to its group's summary variable —
	// the substitution whose application produced Abstracted.
	Subst map[provenance.Var]provenance.Var
}

// Summarize runs the pairwise-merge summarization until |P↓|_M <= B.
func Summarize(s *provenance.Set, forest *abstree.Forest, B int, opts Options) (*Result, error) {
	if B < 1 {
		return nil, fmt.Errorf("summarize: bound B=%d must be at least 1", B)
	}
	inst, err := core.NewInstance(s, forest)
	if err != nil {
		return nil, err
	}
	start := time.Now()

	// group state: per variable-name, the members of its group. Groups are
	// tagged with the tree index that constrains them.
	type group struct {
		tree    int
		members []string // leaf variable names, sorted
		rep     provenance.Var
	}
	var groups []*group
	for ti, t := range inst.Forest.Trees {
		for _, l := range t.Leaves() {
			name := t.Label(l)
			if v, ok := s.Vocab.Lookup(name); ok {
				groups = append(groups, &group{tree: ti, members: []string{name}, rep: v})
			}
		}
	}

	cur := s.Clone()
	res := &Result{}
	freshID := 0

	for cur.Size() > B {
		if opts.MaxRounds > 0 && res.Rounds >= opts.MaxRounds {
			break
		}
		if opts.Timeout > 0 && time.Since(start) > opts.Timeout {
			res.TimedOut = true
			break
		}
		// One pass over the current polynomials collects each group
		// representative's residue set; every pair scoring below is then a
		// set intersection. The per-round cost stays quadratic in the
		// number of groups — the competitor's defining expense — without
		// re-scanning the polynomials per pair.
		residues := make(map[provenance.Var]map[residueID]struct{}, len(groups))
		for _, g := range groups {
			set := make(map[residueID]struct{})
			for pi, p := range cur.Polys {
				for _, k := range p.Residues(g.rep) {
					set[residueID{int32(pi), k}] = struct{}{}
				}
			}
			residues[g.rep] = set
		}
		// Score every admissible pair through the oracle.
		bestI, bestJ, bestML := -1, -1, -1
		timedOut := false
		for i := 0; i < len(groups) && !timedOut; i++ {
			for j := i + 1; j < len(groups); j++ {
				if groups[i].tree != groups[j].tree {
					continue // oracle: no shared semantic domain
				}
				res.OracleCalls++
				if opts.Timeout > 0 && res.OracleCalls%1024 == 0 && time.Since(start) > opts.Timeout {
					timedOut = true
					break
				}
				ml := intersectionSize(residues[groups[i].rep], residues[groups[j].rep])
				key := groups[i].members[0] + "|" + groups[j].members[0]
				better := ml > bestML
				if !better && ml == bestML && bestI >= 0 {
					bestKey := groups[bestI].members[0] + "|" + groups[bestJ].members[0]
					better = key < bestKey
				}
				if better {
					bestI, bestJ, bestML = i, j, ml
				}
			}
		}
		if timedOut {
			res.TimedOut = true
			break
		}
		if bestI < 0 {
			break // nothing mergeable
		}
		// Apply the merge: both groups substitute to a fresh summary
		// variable.
		freshID++
		meta := s.Vocab.Var(fmt.Sprintf("ainy_g%d", freshID))
		subst := map[provenance.Var]provenance.Var{
			groups[bestI].rep: meta,
			groups[bestJ].rep: meta,
		}
		cur = cur.Substitute(subst)
		merged := &group{
			tree:    groups[bestI].tree,
			members: mergeSorted(groups[bestI].members, groups[bestJ].members),
			rep:     meta,
		}
		ng := groups[:0]
		for k, g := range groups {
			if k != bestI && k != bestJ {
				ng = append(ng, g)
			}
		}
		groups = append(ng, merged)
		res.Rounds++
	}

	res.ML = s.Size() - cur.Size()
	res.VL = s.Granularity() - cur.Granularity()
	res.Adequate = cur.Size() <= B
	res.Elapsed = time.Since(start)
	res.Abstracted = cur
	res.Subst = make(map[provenance.Var]provenance.Var)
	for _, g := range groups {
		if len(g.members) >= 2 {
			res.Groups = append(res.Groups, g.members)
			for _, name := range g.members {
				if v, ok := s.Vocab.Lookup(name); ok {
					res.Subst[v] = g.rep
				}
			}
		}
	}
	sort.Slice(res.Groups, func(i, j int) bool { return res.Groups[i][0] < res.Groups[j][0] })
	return res, nil
}

// residueID tags a residue with its polynomial so residues of different
// polynomials never match.
type residueID struct {
	poly int32
	key  provenance.MonomialKey
}

// intersectionSize counts shared residues — the monomial loss of unifying
// the two variables.
func intersectionSize(a, b map[residueID]struct{}) int {
	if len(b) < len(a) {
		a, b = b, a
	}
	n := 0
	for k := range a {
		if _, ok := b[k]; ok {
			n++
		}
	}
	return n
}

func mergeSorted(a, b []string) []string {
	out := make([]string, 0, len(a)+len(b))
	out = append(out, a...)
	out = append(out, b...)
	sort.Strings(out)
	return out
}
