// Command provbench regenerates every table and figure of the paper's
// evaluation: compression time vs cuts (Figures 5–7), vs data size
// (Figure 8), vs bound (Figure 9), assignment-time speedup (Figure 10),
// time vs number of trees (Figure 11), the comparison with Ainy et al.
// (Figure 12), time vs number of variables (Figure 14), greedy quality
// (Table 1) and the tree catalog (Table 2).
//
//	provbench                         # run everything at CI scale
//	provbench -experiment fig5        # one experiment
//	provbench -experiment delta -json BENCH_3.json     # delta-kernel report
//	provbench -experiment planner -json BENCH_5.json   # planner report
//	provbench -experiment semiring -json BENCH_6.json  # generic-kernel report
//	provbench -experiment scenql -json BENCH_7.json    # ScenQL generator-vs-wire report
//	provbench -experiment gateway -json BENCH_9.json   # gateway pool-router report
//	provbench -workloads Q5,telco     # restrict the workload panels
//	provbench -tpch-sf 0.02 -telco-customers 20000   # larger scale
//	provbench -csv                    # machine-readable output
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"provabs/internal/bench"
	"provabs/internal/treegen"
)

func main() {
	experiment := flag.String("experiment", "all",
		"all, fig5, fig6, fig7, fig8, fig9, fig10, fig11, fig12, fig14, table1, table2, "+
			"delta (the BENCH_3 delta-kernel report), planner (the BENCH_5 "+
			"self-tuning planner report), semiring (the BENCH_6 generic-kernel "+
			"report), scenql (the BENCH_7 generator-vs-wire report) or gateway "+
			"(the BENCH_9 pool-router report); the "+
			"report experiments are not part of all")
	workloadsFlag := flag.String("workloads", "Q5,Q10,Q1,telco", "comma-separated workload panels")
	tpchSF := flag.Float64("tpch-sf", 0.002, "TPC-H scale factor")
	telcoCustomers := flag.Int("telco-customers", 800, "telco customers")
	telcoZips := flag.Int("telco-zips", 40, "telco zip codes")
	seed := flag.Int64("seed", 1, "generator seed")
	steps := flag.Int("steps", 5, "points per sweep")
	rounds := flag.Int("assign-rounds", 10, "scenario evaluations per speedup measurement")
	ainyTimeout := flag.Duration("ainy-timeout", 30*time.Second, "competitor cutoff (paper: 24h)")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	jsonOut := flag.String("json", "",
		"delta/planner experiments: also write the machine-readable report (BENCH_3.json / BENCH_5.json) to this file")
	flag.Parse()

	sc := bench.Scale{
		TPCHScaleFactor: *tpchSF,
		TelcoCustomers:  *telcoCustomers,
		TelcoZips:       *telcoZips,
		Seed:            *seed,
	}
	names := strings.Split(*workloadsFlag, ",")
	emit := func(t *bench.Table, err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, "provbench:", err)
			os.Exit(1)
		}
		if *csv {
			fmt.Println("#", t.Title)
			fmt.Print(t.CSV())
		} else {
			fmt.Println(t.String())
		}
	}
	want := func(id string) bool { return *experiment == "all" || *experiment == id }

	loadAll := func() []*bench.Workload {
		var out []*bench.Workload
		for _, n := range names {
			w, err := bench.LoadWorkload(strings.TrimSpace(n), sc)
			if err != nil {
				fmt.Fprintln(os.Stderr, "provbench:", err)
				os.Exit(1)
			}
			out = append(out, w)
		}
		return out
	}

	if want("table2") {
		emit(bench.TreeCatalog(), nil)
	}
	var ws []*bench.Workload
	needWorkloads := false
	for _, id := range []string{"fig5", "fig6", "fig7", "fig9", "fig10", "fig11", "table1"} {
		if want(id) {
			needWorkloads = true
		}
	}
	if needWorkloads {
		ws = loadAll()
	}
	if want("fig5") {
		for _, w := range ws {
			emit(bench.CompressionTimeVsCuts(w, []int{1}))
		}
	}
	if want("fig6") {
		for _, w := range ws {
			emit(bench.CompressionTimeVsCuts(w, []int{2, 3, 4}))
		}
	}
	if want("fig7") {
		for _, w := range ws {
			emit(bench.CompressionTimeVsCuts(w, []int{5, 6, 7}))
		}
	}
	if want("fig8") {
		for _, n := range names {
			emit(bench.CompressionTimeVsDataSize(strings.TrimSpace(n), sc,
				[]float64{0.25, 0.5, 1, 2, 4}))
		}
	}
	if want("fig9") {
		for _, w := range ws {
			emit(bench.CompressionTimeVsBound(w, treegen.SmallestOfType(1), *steps))
		}
	}
	if want("fig10") {
		for _, w := range ws {
			emit(bench.SpeedupVsBound(w, treegen.SmallestOfType(1), *steps, *rounds))
		}
	}
	if want("fig11") {
		for _, w := range ws {
			emit(bench.TimeVsNumTrees(w, 8))
		}
	}
	if want("fig12") {
		for _, n := range names {
			n = strings.TrimSpace(n)
			if n != "Q5" && n != "Q1" {
				continue // the paper reports Figure 12 on Q5 and Q1 only
			}
			w, err := bench.LoadWorkload(n, sc)
			if err != nil {
				fmt.Fprintln(os.Stderr, "provbench:", err)
				os.Exit(1)
			}
			emit(bench.OptVsCompetitor(w, treegen.SmallestOfType(1), *steps, *ainyTimeout))
		}
	}
	if want("fig14") {
		for _, n := range names {
			n = strings.TrimSpace(n)
			if n != "Q5" && n != "Q1" {
				continue // Appendix B reports Q5 and Q1
			}
			emit(bench.TimeVsNumVariables(n, sc, []int{128, 512, 2048, 8000}))
		}
	}
	if want("table1") {
		for _, w := range ws {
			emit(bench.GreedyQuality(w, []int{1, 2, 3, 4, 5, 6, 7}))
		}
	}
	// The delta-kernel and planner reports are explicitly requested (never
	// part of "all": `make bench` runs them as their own steps) and run at
	// their own, sparser scale so the recorded numbers are reproducible
	// regardless of the sweep flags.
	writeJSON := func(data []byte, err error) {
		if err == nil && *jsonOut != "" {
			err = os.WriteFile(*jsonOut, data, 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "provbench:", err)
			os.Exit(1)
		}
		if *jsonOut != "" {
			fmt.Printf("wrote %s\n", *jsonOut)
		}
	}
	if *experiment == "delta" {
		rep, err := bench.RunDeltaBench(bench.DeltaScale())
		if err != nil {
			fmt.Fprintln(os.Stderr, "provbench:", err)
			os.Exit(1)
		}
		emit(rep.Table(), nil)
		writeJSON(rep.JSON())
	}
	if *experiment == "planner" {
		rep, err := bench.RunPlannerBench(bench.DeltaScale())
		if err != nil {
			fmt.Fprintln(os.Stderr, "provbench:", err)
			os.Exit(1)
		}
		emit(rep.Table(), nil)
		writeJSON(rep.JSON())
	}
	if *experiment == "semiring" {
		rep, err := bench.RunSemiringBench(bench.DeltaScale())
		if err != nil {
			fmt.Fprintln(os.Stderr, "provbench:", err)
			os.Exit(1)
		}
		emit(rep.Table(), nil)
		writeJSON(rep.JSON())
	}
	if *experiment == "scenql" {
		rep, err := bench.RunScenQLBench(bench.DeltaScale())
		if err != nil {
			fmt.Fprintln(os.Stderr, "provbench:", err)
			os.Exit(1)
		}
		emit(rep.Table(), nil)
		writeJSON(rep.JSON())
	}
	if *experiment == "gateway" {
		rep, err := bench.RunGatewayBench(bench.DeltaScale())
		if err != nil {
			fmt.Fprintln(os.Stderr, "provbench:", err)
			os.Exit(1)
		}
		emit(rep.Table(), nil)
		writeJSON(rep.JSON())
	}
}
