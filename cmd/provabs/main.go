// Command provabs is the command-line front end of the library: generate
// benchmark provenance, inspect it, compress it with the paper's
// algorithms, and evaluate hypothetical scenarios.
//
// Usage:
//
//	provabs generate -dataset telco -customers 1000 -zips 100 -out telco.pvab
//	provabs generate -dataset tpch -query Q5 -sf 0.002 -out q5.pvab
//	provabs stats -in q5.pvab
//	provabs trees
//	provabs compress -in q5.pvab -algo opt -shape 2,64 -prefix s -ratio 0.5 -out q5c.pvab
//	provabs compress -in q5.pvab -algo greedy -tree 'Root(A(s0,s1),B(s2,s3))' -bound 100
//	provabs eval -in q5c.pvab -set SuppRoot_l1_0=0.8,s9=1.1
//	provabs whatif -in q5c.pvab -scenarios 1000 -workers 0
//	provabs whatif -in q5c.pvab -sets 's9=0.8;s9=1.1,s4=0.5'
//	provabs whatif -in q5.pvab -scenarios 1000 -semiring bool
//	provabs query -in q5c.pvab 'SuppRoot_l1_0 IN [0.5:1.5:0.01] ORDER BY ans[0] DESC LIMIT 5'
//	provabs query -in q5c.pvab 'EXPLAIN s9 IN [0:1:0.1] USING tropical'
//	provabs serve -in q5c.pvab -addr :8080
//	provabs serve -load telco=telco.pvab -load q5=q5c.pvab -default telco -addr :8080
//	provabs gateway -backend 127.0.0.1:8081 -backend 127.0.0.1:8082 -addr :8090
//
// Every compression and evaluation path runs through the session Engine
// (provabs.Open): one object owning the provenance, the abstraction, and
// the compiled-evaluation cache.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"provabs/internal/abstree"
	"provabs/internal/bench"
	"provabs/internal/hypo"
	"provabs/internal/provenance"
	"provabs/internal/sampling"
	"provabs/internal/scenql"
	"provabs/internal/semiring"
	"provabs/internal/session"
	"provabs/internal/summarize"
	"provabs/internal/telco"
	"provabs/internal/tpch"
	"provabs/internal/treegen"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "generate":
		err = cmdGenerate(os.Args[2:])
	case "stats":
		err = cmdStats(os.Args[2:])
	case "compress":
		err = cmdCompress(os.Args[2:])
	case "eval":
		err = cmdEval(os.Args[2:])
	case "whatif":
		err = cmdWhatif(os.Args[2:])
	case "query":
		err = cmdQuery(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "gateway":
		err = cmdGateway(os.Args[2:])
	case "trees":
		err = cmdTrees(os.Args[2:])
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "provabs: unknown command %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "provabs:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `provabs — hypothetical reasoning via provenance abstraction

commands:
  generate   generate benchmark provenance (telco or tpch)
  stats      print size statistics of a provenance file
  compress   select an abstraction and compress a provenance file
  eval       evaluate a hypothetical scenario over a provenance file
  whatif     batch-evaluate many scenarios on compiled provenance in parallel (any semiring)
  query      run a ScenQL scenario query (grid sweeps, sampling, ORDER BY, EXPLAIN)
  serve      serve named provenance sessions over HTTP (v1 API + streaming NDJSON)
  gateway    route /v1 traffic across a pool of serve backends (consistent hashing, live migration)
  trees      print the benchmark abstraction-tree catalog (Table 2)

run 'provabs <command> -h' for command flags`)
}

func cmdGenerate(args []string) error {
	fs := flag.NewFlagSet("generate", flag.ExitOnError)
	dataset := fs.String("dataset", "telco", "telco or tpch")
	out := fs.String("out", "", "output provenance file (required)")
	customers := fs.Int("customers", 1000, "telco: number of customers")
	zips := fs.Int("zips", 100, "telco: number of zip codes")
	sf := fs.Float64("sf", 0.002, "tpch: scale factor")
	query := fs.String("query", "Q5", "tpch: Q1, Q5 or Q10")
	seed := fs.Int64("seed", 1, "generator seed")
	fs.Parse(args)
	if *out == "" {
		return fmt.Errorf("generate: -out is required")
	}
	var set *provenance.Set
	switch *dataset {
	case "telco":
		s, err := telco.SyntheticProvenance(telco.Config{
			Customers: *customers, Plans: 128, Months: 12, Zips: *zips, Seed: *seed,
		})
		if err != nil {
			return err
		}
		set = s
	case "tpch":
		d, err := tpch.Generate(tpch.Config{ScaleFactor: *sf, Seed: *seed})
		if err != nil {
			return err
		}
		s, err := d.Provenance(tpch.QueryID(*query))
		if err != nil {
			return err
		}
		set = s
	default:
		return fmt.Errorf("generate: unknown dataset %q", *dataset)
	}
	if err := writeSet(*out, set); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d polynomials, %d monomials, %d variables, %d bytes\n",
		*out, set.Len(), set.Size(), set.Granularity(), provenance.EncodedSize(set))
	return nil
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	in := fs.String("in", "", "provenance file (required)")
	verbose := fs.Bool("v", false, "print every polynomial's size")
	fs.Parse(args)
	set, err := readSet(*in)
	if err != nil {
		return err
	}
	fmt.Printf("polynomials: %d\n", set.Len())
	fmt.Printf("|P|_M (monomials): %d\n", set.Size())
	fmt.Printf("|P|_V (variables): %d\n", set.Granularity())
	fmt.Printf("min/mean/max polynomial size: %d / %.2f / %d\n",
		set.MinPolySize(), set.MeanPolySize(), set.MaxPolySize())
	fmt.Printf("encoded bytes: %d\n", provenance.EncodedSize(set))
	if *verbose {
		for i, p := range set.Polys {
			fmt.Printf("  %-30s %d monomials, %d variables\n", set.Tags[i], p.Size(), p.Granularity())
		}
	}
	return nil
}

func cmdCompress(args []string) error {
	fs := flag.NewFlagSet("compress", flag.ExitOnError)
	in := fs.String("in", "", "provenance file (required)")
	out := fs.String("out", "", "output file for the compressed provenance (optional)")
	algo := fs.String("algo", "auto", "auto, opt, greedy, brute, ainy or online")
	treeSrc := fs.String("tree", "", "abstraction tree(s) in compact format, ';'-separated")
	shapeSrc := fs.String("shape", "", "build a uniform tree instead: comma-separated fan-outs, e.g. 2,64")
	prefix := fs.String("prefix", "s", "leaf prefix for -shape trees (s, p, pl)")
	bound := fs.Int("bound", 0, "monomial bound B (overrides -ratio)")
	ratio := fs.Float64("ratio", 0.5, "bound as a fraction of |P|_M")
	fraction := fs.Float64("fraction", 0.3, "online: sample fraction")
	seed := fs.Int64("seed", 1, "online: sample seed")
	timeout := fs.Duration("timeout", time.Minute, "ainy: cutoff")
	fs.Parse(args)
	set, err := readSet(*in)
	if err != nil {
		return err
	}
	forest, err := buildForest(*treeSrc, *shapeSrc, *prefix)
	if err != nil {
		return err
	}
	strategy, err := session.ParseStrategy(*algo)
	if err != nil {
		return err
	}
	B := resolveBound(*bound, *ratio, set.Size())
	eng, err := session.Open(set, forest)
	if err != nil {
		return err
	}
	comp, err := eng.Compress(B,
		session.WithStrategy(strategy),
		session.WithSamplingFraction(*fraction),
		session.WithSeed(*seed),
		session.WithTimeout(*timeout))
	if err != nil {
		return err
	}
	fmt.Printf("%s: %s in %v\n", comp.Strategy, adequacy(comp.Adequate), comp.Elapsed)
	if comp.VVS != nil {
		fmt.Printf("VVS: %s\n", comp.VVS)
	}
	switch extra := comp.Extra.(type) {
	case *summarize.Result:
		fmt.Printf("ainy: %d oracle calls, %d merges\n", extra.OracleCalls, extra.Rounds)
	case *sampling.Result:
		fmt.Printf("online: sample |P|_M=%d, adapted bound=%d\n", extra.SampleSize, extra.SampleBound)
	}
	return finishCompress(set, comp.Abstracted, *out)
}

func adequacy(ok bool) string {
	if ok {
		return "bound met"
	}
	return "bound NOT met (best effort)"
}

func finishCompress(orig, abs *provenance.Set, out string) error {
	fmt.Printf("monomials: %d -> %d (ML %d)\n", orig.Size(), abs.Size(), orig.Size()-abs.Size())
	fmt.Printf("variables: %d -> %d (VL %d)\n", orig.Granularity(), abs.Granularity(),
		orig.Granularity()-abs.Granularity())
	fmt.Printf("bytes:     %d -> %d\n", provenance.EncodedSize(orig), provenance.EncodedSize(abs))
	if out != "" {
		if err := writeSet(out, abs); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", out)
	}
	return nil
}

func cmdEval(args []string) error {
	fs := flag.NewFlagSet("eval", flag.ExitOnError)
	in := fs.String("in", "", "provenance file (required)")
	assign := fs.String("set", "", "comma-separated var=value assignments")
	top := fs.Int("top", 20, "print at most this many answers (0 = all)")
	fs.Parse(args)
	set, err := readSet(*in)
	if err != nil {
		return err
	}
	sc := hypo.NewScenario()
	if *assign != "" {
		sc, err = scenql.ParseAssignments(*assign)
		if err != nil {
			return fmt.Errorf("eval: -set: %w", err)
		}
	}
	eng, err := session.Open(set, nil)
	if err != nil {
		return err
	}
	answers, err := eng.WhatIf(sc)
	if err != nil {
		return err
	}
	sort.Slice(answers, func(i, j int) bool { return answers[i].Value > answers[j].Value })
	n := len(answers)
	if *top > 0 && n > *top {
		n = *top
	}
	for _, a := range answers[:n] {
		fmt.Printf("%-40s %14.2f\n", a.Tag, a.Value)
	}
	if n < len(answers) {
		fmt.Printf("... (%d more)\n", len(answers)-n)
	}
	return nil
}

// cmdWhatif is the batch what-if mode: compile the provenance once, then
// evaluate many scenarios against it with the parallel batch engine. It is
// the CLI surface of the paper's core promise — once compressed (and now
// compiled), hypothetical scenarios are cheap enough to ask in bulk.
func cmdWhatif(args []string) error {
	fs := flag.NewFlagSet("whatif", flag.ExitOnError)
	in := fs.String("in", "", "provenance file (required)")
	scenarios := fs.Int("scenarios", 0, "generate this many pseudo-random scenarios")
	sets := fs.String("sets", "", "';'-separated explicit scenarios, each comma-separated var=value")
	seed := fs.Int64("seed", 1, "seed for -scenarios generation")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	deltaCutoff := fs.Float64("delta-cutoff", 0,
		"delta-vs-full density cutoff (0 = adaptive, learned from observed timings; >0 = static fraction; negative = always evaluate in full)")
	sparse := fs.Float64("sparse", 0.5, "fraction of variables each generated scenario assigns")
	top := fs.Int("top", 5, "print at most this many answers of the first scenario (0 = none)")
	sem := fs.String("semiring", "",
		"evaluation semiring: float (default), bool, count, tropical or minmax")
	fs.Parse(args)
	kind, err := semiring.ParseKind(*sem)
	if err != nil {
		return fmt.Errorf("whatif: %w", err)
	}
	set, err := readSet(*in)
	if err != nil {
		return err
	}
	var scs []*hypo.Scenario
	if *sets != "" {
		scs, err = scenql.ParseScenarios(*sets)
		if err != nil {
			return fmt.Errorf("whatif: -sets: %w", err)
		}
	}
	if *scenarios > 0 {
		vars := set.Vars()
		rng := rand.New(rand.NewSource(*seed))
		for i := 0; i < *scenarios; i++ {
			sc := hypo.NewScenario()
			for _, v := range vars {
				if rng.Float64() < *sparse {
					sc.Set(set.Vocab.Name(v), scenarioValue(kind, rng))
				}
			}
			scs = append(scs, sc)
		}
	}
	if len(scs) == 0 {
		return fmt.Errorf("whatif: provide -scenarios N and/or -sets")
	}
	eng, err := session.Open(set, nil,
		session.WithWorkers(*workers), session.WithDeltaCutoff(*deltaCutoff))
	if err != nil {
		return err
	}
	if kind != semiring.KindFloat {
		return whatifIn(eng, kind, scs, *top)
	}
	compileStart := time.Now()
	compiled := eng.Compiled() // cached on the session; the batch below reuses it
	compileTime := time.Since(compileStart)
	evalStart := time.Now()
	rows, err := eng.WhatIfBatch(scs)
	if err != nil {
		return err
	}
	elapsed := time.Since(evalStart)
	perSec := float64(len(rows)) / elapsed.Seconds()
	fmt.Printf("compiled %d polynomials / %d monomials in %v\n",
		compiled.Len(), compiled.Size(), compileTime)
	fmt.Printf("evaluated %d scenarios in %v (%.0f scenarios/s, %.0f answers/s)\n",
		len(rows), elapsed, perSec, perSec*float64(compiled.Len()))
	st := eng.Stats()
	fmt.Printf("paths: %d delta, %d chained, %d full, %d sharded\n",
		st.DeltaEvals, st.ChainedEvals, st.FullEvals, st.ShardedEvals)
	if st.AdaptiveCutoff > 0 {
		fmt.Printf("adaptive cutoff: %.3f (delta %.2f ns/term, full %.2f ns/term)\n",
			st.AdaptiveCutoff, st.DeltaNsPerTerm, st.FullNsPerTerm)
	}
	if *top > 0 && len(rows) > 0 {
		first := append([]hypo.Answer(nil), rows[0]...)
		sort.Slice(first, func(i, j int) bool { return first[i].Value > first[j].Value })
		n := len(first)
		if n > *top {
			n = *top
		}
		fmt.Println("first scenario, top answers:")
		for _, a := range first[:n] {
			fmt.Printf("  %-40s %14.2f\n", a.Tag, a.Value)
		}
	}
	return nil
}

// cmdQuery runs one ScenQL statement against a provenance file: the
// scenarios are generated by the plan's iterator in overlap-maximizing
// order and evaluated through the session's chained stream path, so a
// large grid never materializes. EXPLAIN prints the annotated plan tree as
// indented JSON — the same document POST /v1/sessions/{name}/query returns.
func cmdQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	in := fs.String("in", "", "provenance file (required)")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	deltaCutoff := fs.Float64("delta-cutoff", 0,
		"delta-vs-full density cutoff (0 = adaptive; >0 = static fraction; negative = always full)")
	jsonOut := fs.Bool("json", false, "emit NDJSON rows instead of text")
	top := fs.Int("top", 3, "text mode: answers to print per row (0 = all)")
	fs.Parse(args)
	stmt := strings.TrimSpace(strings.Join(fs.Args(), " "))
	if stmt == "" {
		return fmt.Errorf("query: provide a ScenQL statement, e.g. 'x IN [0:1:0.1] ORDER BY ans[0] DESC LIMIT 5'")
	}
	set, err := readSet(*in)
	if err != nil {
		return err
	}
	eng, err := session.Open(set, nil,
		session.WithWorkers(*workers), session.WithDeltaCutoff(*deltaCutoff))
	if err != nil {
		return err
	}
	info, rows, err := eng.QueryStream(context.Background(), stmt)
	if err != nil {
		return err
	}
	if info.Explain != nil {
		out, err := json.MarshalIndent(info.Explain, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(out))
		return nil
	}
	if *jsonOut {
		return queryJSON(info, rows)
	}
	return queryText(eng, info, rows, *top)
}

// queryJSON mirrors the server's /query/stream wire shape on stdout: a
// header line, then one NDJSON line per scenario.
func queryJSON(info *session.QueryInfo, rows <-chan session.QueryRow) error {
	type answerOut struct {
		Tag   string `json:"tag"`
		Value any    `json:"value"`
	}
	type rowOut struct {
		Index   int64              `json:"index"`
		Assign  map[string]float64 `json:"assign,omitempty"`
		Answers []answerOut        `json:"answers,omitempty"`
		Error   string             `json:"error,omitempty"`
	}
	enc := json.NewEncoder(os.Stdout)
	if err := enc.Encode(map[string]any{
		"semiring": info.Semiring.String(), "scenarios": info.Scenarios,
	}); err != nil {
		return err
	}
	for row := range rows {
		line := rowOut{Index: row.Index, Assign: row.Assign}
		if row.Err != nil {
			line.Error = row.Err.Error()
		} else {
			line.Answers = make([]answerOut, len(row.Answers))
			for i, a := range row.Answers {
				line.Answers[i] = answerOut{Tag: a.Tag, Value: wireValue(a.Value)}
			}
		}
		if err := enc.Encode(line); err != nil {
			return err
		}
	}
	return nil
}

// wireValue maps a carrier value to a JSON-encodable one (the tropical /
// minmax identities are ±Inf, which encoding/json rejects as numbers).
func wireValue(v any) any {
	if f, ok := v.(float64); ok && math.IsInf(f, 0) {
		if f > 0 {
			return "+Inf"
		}
		return "-Inf"
	}
	return v
}

// queryText prints a human-readable sweep: one line per scenario with its
// generated assignments, the top answers indented under it, and a summary
// with the evaluation-path counters.
func queryText(eng *session.Engine, info *session.QueryInfo, rows <-chan session.QueryRow, top int) error {
	start := time.Now()
	var n, errs int64
	for row := range rows {
		n++
		if row.Err != nil {
			errs++
			fmt.Printf("#%-6d %s  error: %v\n", row.Index, formatAssign(row.Assign), row.Err)
			continue
		}
		fmt.Printf("#%-6d %s\n", row.Index, formatAssign(row.Assign))
		answers := row.Answers
		if top > 0 && len(answers) > top {
			answers = answers[:top]
		}
		for _, a := range answers {
			fmt.Printf("        %-40s %14v\n", a.Tag, a.Value)
		}
	}
	elapsed := time.Since(start)
	fmt.Printf("%d of %d scenarios in the %s semiring in %v (%d errors)\n",
		n, info.Scenarios, info.Semiring, elapsed, errs)
	st := eng.Stats()
	if info.Semiring != semiring.KindFloat {
		ss := st.Semirings[info.Semiring.String()]
		fmt.Printf("paths: %d delta, %d chained, %d full, %d sharded\n",
			ss.DeltaEvals, ss.ChainedEvals, ss.FullEvals, ss.ShardedEvals)
		return nil
	}
	fmt.Printf("paths: %d delta, %d chained, %d full, %d sharded\n",
		st.DeltaEvals, st.ChainedEvals, st.FullEvals, st.ShardedEvals)
	return nil
}

// formatAssign renders a scenario's assignments name-sorted, the way the
// generator's axes are easiest to scan.
func formatAssign(assign map[string]float64) string {
	names := make([]string, 0, len(assign))
	for name := range assign {
		names = append(names, name)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, name := range names {
		parts[i] = fmt.Sprintf("%s=%g", name, assign[name])
	}
	return strings.Join(parts, " ")
}

// scenarioValue draws one generated assignment in the carrier's natural
// domain: magnitudes near 1 for the float default, keep/delete bits under
// bool, small multiplicities under count, per-tuple costs under tropical,
// clearance levels under minmax.
func scenarioValue(kind semiring.Kind, rng *rand.Rand) float64 {
	switch kind {
	case semiring.KindBool:
		if rng.Float64() < 0.5 {
			return 0 // delete the tuple
		}
		return 1
	case semiring.KindCount:
		return float64(rng.Intn(4)) // 0 deletes, n replicates n-fold
	case semiring.KindTropical:
		return rng.Float64() * 10 // per-tuple derivation cost
	case semiring.KindMinMax:
		return float64(1 + rng.Intn(5)) // clearance level
	}
	return 0.5 + rng.Float64()
}

// whatifIn is cmdWhatif's non-float tail: the same batch evaluation on the
// chosen carrier's kernel (compiled lazily inside the timed region — the
// per-carrier compile is part of the first batch's cost) with the
// per-semiring path counters from Stats.Semirings.
func whatifIn(eng *session.Engine, kind semiring.Kind, scs []*hypo.Scenario, top int) error {
	evalStart := time.Now()
	rows, err := eng.WhatIfBatchIn(kind, scs)
	if err != nil {
		return err
	}
	elapsed := time.Since(evalStart)
	perSec := float64(len(rows)) / elapsed.Seconds()
	fmt.Printf("evaluated %d scenarios in the %s semiring in %v (%.0f scenarios/s)\n",
		len(rows), kind, elapsed, perSec)
	ss := eng.Stats().Semirings[kind.String()]
	fmt.Printf("paths: %d delta, %d chained, %d full, %d sharded\n",
		ss.DeltaEvals, ss.ChainedEvals, ss.FullEvals, ss.ShardedEvals)
	if top > 0 && len(rows) > 0 {
		first := append([]hypo.ValueAnswer(nil), rows[0]...)
		sort.SliceStable(first, func(i, j int) bool { return valueOrd(first[i].Value) > valueOrd(first[j].Value) })
		if len(first) > top {
			first = first[:top]
		}
		fmt.Println("first scenario, top answers:")
		for _, a := range first {
			fmt.Printf("  %-40s %14v\n", a.Tag, a.Value)
		}
	}
	return nil
}

// valueOrd orders carrier-erased answers for the top-N display: derivable
// before deleted, higher counts, costs and clearance levels numerically.
func valueOrd(v any) float64 {
	switch x := v.(type) {
	case bool:
		if x {
			return 1
		}
		return 0
	case int64:
		return float64(x)
	case float64:
		return x
	}
	return 0
}

// resolveBound turns the -bound/-ratio flag pair into a monomial bound: an
// explicit bound wins, otherwise the ratio of the set size, floored at 1.
func resolveBound(bound int, ratio float64, size int) int {
	if bound > 0 {
		return bound
	}
	b := int(float64(size) * ratio)
	if b < 1 {
		b = 1
	}
	return b
}

func cmdTrees(args []string) error {
	fs := flag.NewFlagSet("trees", flag.ExitOnError)
	fs.Parse(args)
	fmt.Print(bench.TreeCatalog().String())
	return nil
}

func buildForest(treeSrc, shapeSrc, prefix string) (*abstree.Forest, error) {
	switch {
	case treeSrc != "":
		var trees []*abstree.Tree
		for _, src := range strings.Split(treeSrc, ";") {
			t, err := abstree.ParseTree(strings.TrimSpace(src))
			if err != nil {
				return nil, err
			}
			trees = append(trees, t)
		}
		return abstree.NewForest(trees...)
	case shapeSrc != "":
		var fanouts []int
		for _, f := range strings.Split(shapeSrc, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || n < 1 {
				return nil, fmt.Errorf("bad fan-out %q", f)
			}
			fanouts = append(fanouts, n)
		}
		shape := treegen.Shape{Fanouts: fanouts}
		tree := shape.Build("Root", treegen.NumberedLeaves(prefix))
		return abstree.NewForest(tree)
	}
	return nil, fmt.Errorf("compress: provide -tree or -shape")
}

func writeSet(path string, s *provenance.Set) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := provenance.Encode(f, s); err != nil {
		return err
	}
	return f.Close()
}

func readSet(path string) (*provenance.Set, error) {
	if path == "" {
		return nil, fmt.Errorf("-in is required")
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return provenance.Decode(f)
}
