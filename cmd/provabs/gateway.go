package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"provabs/internal/gateway"
)

// backendFlags collects repeated -backend host:port flags (a comma-joined
// list in one flag works too).
type backendFlags []string

func (b *backendFlags) String() string { return strings.Join(*b, ",") }

func (b *backendFlags) Set(v string) error {
	for _, addr := range strings.Split(v, ",") {
		addr = strings.TrimSpace(addr)
		if addr == "" {
			continue
		}
		*b = append(*b, addr)
	}
	return nil
}

// cmdGateway runs the pool router: a stateless gateway consistent-hashing
// session names across a pool of provabs serve backends, forwarding every
// /v1 verb (NDJSON streams full-duplex, per-line acks preserved),
// health-checking the pool, merging GET /v1/stats, enforcing per-tenant
// limits, and live-migrating sessions when the pool changes (drain/add via
// the /gateway admin endpoints).
func cmdGateway(args []string) error {
	fs := flag.NewFlagSet("gateway", flag.ExitOnError)
	var backends backendFlags
	fs.Var(&backends, "backend", "backend address host:port (repeatable, or comma-separated)")
	addr := fs.String("addr", ":8090", "listen address (use :0 for an ephemeral port)")
	vnodes := fs.Int("vnodes", 64, "virtual nodes per backend on the hash ring")
	probeInterval := fs.Duration("probe-interval", 2*time.Second, "health-check period per backend")
	probeTimeout := fs.Duration("probe-timeout", time.Second, "health-check request timeout")
	failThreshold := fs.Int("fail-threshold", 2, "consecutive probe failures that eject a backend")
	backendInflight := fs.Int("backend-inflight", 256,
		"max concurrently proxied requests per backend; past it 503 + Retry-After")
	quiesceTimeout := fs.Duration("quiesce-timeout", 10*time.Second,
		"how long a migration waits for in-flight write streams before aborting")
	statePath := fs.String("state", "",
		"durable state journal path; placements and tenant quotas survive a gateway restart (empty = in-memory only)")
	migrateParallel := fs.Int("migrate-parallel", 4,
		"concurrent session migrations per rebalance/drain sweep")
	retryAttempts := fs.Int("retry-attempts", 3,
		"total attempts per idempotent backend call (1 disables retries)")
	attemptTimeout := fs.Duration("attempt-timeout", 30*time.Second,
		"per-attempt timeout for one-shot backend calls (streams are exempt)")
	retryBudget := fs.Float64("retry-budget", 10,
		"retries/sec each backend's retry budget refills at")
	breakerThreshold := fs.Int("breaker-threshold", 3,
		"consecutive transport failures that open a backend's circuit breaker")
	breakerCooldown := fs.Duration("breaker-cooldown", 2*time.Second,
		"circuit breaker's first open window (doubles per trip, capped by -breaker-cooldown-max)")
	breakerCooldownMax := fs.Duration("breaker-cooldown-max", 30*time.Second,
		"cap on the circuit breaker's doubling cooldown")
	journalLines := fs.Int("journal-lines", 4096,
		"max add-stream lines queued per stream during a migration (past it the client stalls)")
	parkLimit := fs.Int("park-limit", 256,
		"max one-shot writes parked per migrating session (past it 503 + Retry-After)")
	maxSessions := fs.Int("tenant-max-sessions", 0, "per-tenant session cap (0 = unlimited)")
	scenarioRate := fs.Float64("tenant-scenario-rate", 0,
		"per-tenant scenarios/sec; one-shots past it get 429 + Retry-After, stream lines are throttled (0 = unlimited)")
	scenarioBurst := fs.Float64("tenant-scenario-burst", 0,
		"scenario token-bucket burst (0 = the rate, min 1)")
	maxStreams := fs.Int("tenant-max-streams", 0, "per-tenant concurrent NDJSON stream cap (0 = unlimited)")
	fs.Parse(args)

	if len(backends) == 0 {
		return fmt.Errorf("gateway: provide at least one -backend host:port")
	}
	g, err := gateway.New(backends, gateway.Options{
		VNodes:          *vnodes,
		ProbeInterval:   *probeInterval,
		ProbeTimeout:    *probeTimeout,
		FailThreshold:   *failThreshold,
		MaxInflight:     *backendInflight,
		QuiesceTimeout:  *quiesceTimeout,
		StatePath:       *statePath,
		MigrateParallel: *migrateParallel,
		Retry: gateway.RetryPolicy{
			MaxAttempts:       *retryAttempts,
			AttemptTimeout:    *attemptTimeout,
			RetryBudgetPerSec: *retryBudget,
		},
		BreakerThreshold:   *breakerThreshold,
		BreakerCooldown:    *breakerCooldown,
		BreakerCooldownMax: *breakerCooldownMax,
		JournalLines:       *journalLines,
		ParkLimit:          *parkLimit,
		Limits: gateway.TenantLimits{
			MaxSessions:     *maxSessions,
			ScenariosPerSec: *scenarioRate,
			Burst:           *scenarioBurst,
			MaxStreams:      *maxStreams,
		},
	})
	if err != nil {
		return err
	}
	g.Start()
	defer g.Stop()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Printf("gateway on http://%s over %d backend(s): %s\n", ln.Addr(), len(backends), backends.String())
	fmt.Println("admin: GET /gateway/backends, POST /gateway/backends {\"addr\":...}, " +
		"POST /gateway/backends/{addr}/drain, DELETE /gateway/backends/{addr}")

	httpSrv := &http.Server{
		Handler:           g.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-ctx.Done()
		fmt.Println("gateway shutting down")
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(sctx); err != nil {
			httpSrv.Close()
		}
	}()
	err = httpSrv.Serve(ln)
	if !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	<-done
	return nil
}
