package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"provabs/internal/provenance"
	"provabs/internal/scenql"
)

// TestParseScenarioLiterals pins the CLI's -set/-sets syntax, which is the
// shared ScenQL scenario-literal parser (the same one the server's stream
// lines use).
func TestParseScenarioLiterals(t *testing.T) {
	sc, err := scenql.ParseAssignments("a=1, b = 0.5 ,c=-2")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{"a": 1, "b": 0.5, "c": -2}
	if len(sc.Assign) != len(want) {
		t.Fatalf("Assign = %v, want %v", sc.Assign, want)
	}
	for k, v := range want {
		if sc.Assign[k] != v {
			t.Errorf("Assign[%q] = %v, want %v", k, sc.Assign[k], v)
		}
	}
}

func TestParseScenarioMalformed(t *testing.T) {
	for _, bad := range []string{
		"",      // no assignment at all
		"a",     // missing =value
		"a=",    // empty value
		"a=x",   // non-numeric value
		"a=1,b", // valid then invalid
		"a=1=2", // value with stray =
		"a==2",  // double separator
	} {
		_, err := scenql.ParseAssignments(bad)
		if err == nil {
			t.Errorf("ParseAssignments(%q) succeeded, want error", bad)
			continue
		}
		if _, ok := err.(*scenql.ParseError); !ok {
			t.Errorf("ParseAssignments(%q) returned %T, want a positioned *ParseError", bad, err)
		}
	}
}

// TestCmdQuery drives the query verb end to end in-process: a grid sweep
// with a top-k, the EXPLAIN plan, and the NDJSON mode.
func TestCmdQuery(t *testing.T) {
	pvab := filepath.Join(t.TempDir(), "q.pvab")
	vb := provenance.NewVocab()
	set := provenance.NewSet(vb)
	set.Add("q", provenance.MustParse(vb, "2·a·b + 3·c"))
	if err := writeSet(pvab, set); err != nil {
		t.Fatal(err)
	}
	out := captureStdout(t, func() {
		if err := cmdQuery([]string{"-in", pvab,
			"a IN [0:1:0.5] ORDER BY ans[0] DESC LIMIT 2"}); err != nil {
			t.Error(err)
		}
	})
	// DESC on an increasing sweep keeps the last two points, best first.
	if !strings.Contains(out, "#2") || !strings.Contains(out, "2 of 3 scenarios") {
		t.Errorf("query text output:\n%s", out)
	}
	out = captureStdout(t, func() {
		if err := cmdQuery([]string{"-in", pvab, "EXPLAIN a IN [0:1:0.5] USING tropical"}); err != nil {
			t.Error(err)
		}
	})
	if !strings.Contains(out, `"node": "generate"`) || !strings.Contains(out, `"semiring": "tropical"`) {
		t.Errorf("explain output:\n%s", out)
	}
	out = captureStdout(t, func() {
		if err := cmdQuery([]string{"-in", pvab, "-json", "a IN [0:1:0.5]"}); err != nil {
			t.Error(err)
		}
	})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header + 3 rows
		t.Fatalf("json mode wrote %d lines, want 4:\n%s", len(lines), out)
	}
	var header struct {
		Semiring  string `json:"semiring"`
		Scenarios int64  `json:"scenarios"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &header); err != nil {
		t.Fatal(err)
	}
	if header.Semiring != "float" || header.Scenarios != 3 {
		t.Errorf("header = %+v", header)
	}
	if err := cmdQuery([]string{"-in", pvab, "a IN [0:1:"}); err == nil {
		t.Error("malformed statement accepted, want error")
	}
}

// TestServeEndToEnd is the acceptance check for the what-if server: build
// the real binary, generate two provenance files, start one `provabs
// serve` process hosting both as named sessions, and drive the v1 API —
// interleaved what-ifs across sessions, a streamed NDJSON batch, legacy
// aliases on the default session, per-session and aggregate stats.
func TestServeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping binary-level integration test in -short mode")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "provabs")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	pvabA := filepath.Join(dir, "a.pvab")
	pvabB := filepath.Join(dir, "b.pvab")
	for pvab, seed := range map[string]string{pvabA: "1", pvabB: "7"} {
		gen := exec.Command(bin, "generate", "-dataset", "telco",
			"-customers", "50", "-zips", "5", "-seed", seed, "-out", pvab)
		if out, err := gen.CombinedOutput(); err != nil {
			t.Fatalf("generate: %v\n%s", err, out)
		}
	}

	srv := exec.Command(bin, "serve",
		"-load", "alpha="+pvabA, "-load", "beta="+pvabB, "-default", "alpha",
		"-addr", "127.0.0.1:0",
		"-tree", "Quarters(q1(m1,m2,m3),q2(m4,m5,m6),q3(m7,m8,m9),q4(m10,m11,m12))",
		"-algo", "greedy", "-ratio", "0.6")
	stdout, err := srv.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	srv.Stderr = os.Stderr
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		srv.Process.Kill()
		srv.Wait()
	}()

	// The server prints "serving … on http://ADDR" once it is listening.
	var base string
	scan := bufio.NewScanner(stdout)
	deadline := time.After(30 * time.Second)
	addrCh := make(chan string, 1)
	go func() {
		for scan.Scan() {
			line := scan.Text()
			if i := strings.Index(line, "http://"); i >= 0 {
				addrCh <- strings.Fields(line[i:])[0]
				break
			}
		}
	}()
	select {
	case base = <-addrCh:
	case <-deadline:
		t.Fatal("server did not report its address in time")
	}

	// Stream a small NDJSON batch to session alpha via the v1 route: a
	// quarter-uniform scenario, an erroneous one, and a per-month scenario.
	batch := strings.Join([]string{
		`{"assign":{"q1":0.8}}`,
		`{"assign":{"no_such_variable":1}}`,
		`{"assign":{"m1":0.5,"m2":0.5}}`,
	}, "\n")
	resp, err := http.Post(base+"/v1/sessions/alpha/whatif/stream", "application/x-ndjson", strings.NewReader(batch))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	type line struct {
		Index   int `json:"index"`
		Answers []struct {
			Tag   string  `json:"tag"`
			Value float64 `json:"value"`
		} `json:"answers"`
		Error string `json:"error"`
	}
	var lines []line
	rscan := bufio.NewScanner(resp.Body)
	for rscan.Scan() {
		var l line
		if err := json.Unmarshal(rscan.Bytes(), &l); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", rscan.Text(), err)
		}
		lines = append(lines, l)
	}
	if err := rscan.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lines) != 3 {
		t.Fatalf("streamed %d result lines, want 3: %+v", len(lines), lines)
	}
	if lines[0].Error != "" || len(lines[0].Answers) == 0 {
		t.Errorf("first scenario: %+v, want answers", lines[0])
	}
	if lines[1].Error == "" {
		t.Errorf("second scenario: %+v, want in-band error", lines[1])
	}
	if lines[2].Error != "" || len(lines[2].Answers) == 0 {
		t.Errorf("third scenario: %+v, want answers", lines[2])
	}

	// Interleave single-scenario what-ifs across both sessions — the
	// steady-state multi-tenant traffic pattern.
	for i := 0; i < 3; i++ {
		for _, name := range []string{"alpha", "beta"} {
			single, err := http.Post(base+"/v1/sessions/"+name+"/whatif", "application/json",
				bytes.NewReader([]byte(`{"assign":{"q1":0.8}}`)))
			if err != nil {
				t.Fatal(err)
			}
			single.Body.Close()
			if single.StatusCode != http.StatusOK {
				t.Fatalf("whatif %s status = %d, want 200", name, single.StatusCode)
			}
		}
	}

	// Legacy unversioned routes alias the default session (alpha): same
	// scenario, byte-identical answers, plus the Deprecation header.
	readAll := func(resp *http.Response, err error) string {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status = %d, want 200", resp.Request.URL, resp.StatusCode)
		}
		var sb strings.Builder
		if _, err := io.Copy(&sb, resp.Body); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	scenario := []byte(`{"assign":{"q1":0.8}}`)
	legacyResp, err := http.Post(base+"/whatif", "application/json", bytes.NewReader(scenario))
	if err != nil {
		t.Fatal(err)
	}
	if legacyResp.Header.Get("Deprecation") != "true" {
		t.Error("legacy /whatif carries no Deprecation header")
	}
	legacyBody := readAll(legacyResp, nil)
	v1Body := readAll(http.Post(base+"/v1/sessions/alpha/whatif", "application/json", bytes.NewReader(scenario)))
	if legacyBody != v1Body {
		t.Errorf("legacy /whatif %q != v1 alpha whatif %q", legacyBody, v1Body)
	}

	// Per-session stats: each session compiled exactly once in steady
	// state, compressed at startup, and only alpha saw the stream.
	type stats struct {
		Compressed bool  `json:"compressed"`
		Scenarios  int64 `json:"scenarios_evaluated"`
		Compiles   int64 `json:"compiles"`
	}
	var alpha, beta stats
	if err := json.Unmarshal([]byte(readAll(http.Get(base+"/v1/sessions/alpha/stats"))), &alpha); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(readAll(http.Get(base+"/v1/sessions/beta/stats"))), &beta); err != nil {
		t.Fatal(err)
	}
	if !alpha.Compressed || !beta.Compressed {
		t.Errorf("sessions report compressed=%v/%v, want both compressed at startup", alpha.Compressed, beta.Compressed)
	}
	// alpha: 2 stream scenarios + 3 interleaved + 2 legacy/v1 parity = 7.
	if alpha.Scenarios != 7 {
		t.Errorf("alpha scenarios = %d, want 7", alpha.Scenarios)
	}
	if beta.Scenarios != 3 {
		t.Errorf("beta scenarios = %d, want 3", beta.Scenarios)
	}
	if alpha.Compiles != 1 || beta.Compiles != 1 {
		t.Errorf("compiles = %d/%d, want 1/1 (compile-once per session under interleaved traffic)",
			alpha.Compiles, beta.Compiles)
	}

	// The aggregate view sums the per-session counters.
	var agg struct {
		Sessions int    `json:"sessions"`
		Default  string `json:"default"`
		Totals   stats  `json:"totals"`
	}
	if err := json.Unmarshal([]byte(readAll(http.Get(base+"/v1/stats"))), &agg); err != nil {
		t.Fatal(err)
	}
	if agg.Sessions != 2 || agg.Default != "alpha" {
		t.Errorf("aggregate sessions=%d default=%q, want 2/alpha", agg.Sessions, agg.Default)
	}
	if want := alpha.Scenarios + beta.Scenarios; agg.Totals.Scenarios != want {
		t.Errorf("aggregate scenarios = %d, want %d", agg.Totals.Scenarios, want)
	}
	if agg.Totals.Compiles != 2 {
		t.Errorf("aggregate compiles = %d, want 2", agg.Totals.Compiles)
	}

	// Session lifecycle over the wire: delete beta, alpha unaffected.
	del, err := http.NewRequest("DELETE", base+"/v1/sessions/beta", nil)
	if err != nil {
		t.Fatal(err)
	}
	delResp, err := http.DefaultClient.Do(del)
	if err != nil {
		t.Fatal(err)
	}
	delResp.Body.Close()
	if delResp.StatusCode != http.StatusOK {
		t.Fatalf("delete beta status = %d, want 200", delResp.StatusCode)
	}
	gone, err := http.Get(base + "/v1/sessions/beta/stats")
	if err != nil {
		t.Fatal(err)
	}
	gone.Body.Close()
	if gone.StatusCode != http.StatusNotFound {
		t.Errorf("stats after delete = %d, want 404", gone.StatusCode)
	}
	readAll(http.Get(base + "/v1/sessions/alpha/stats"))
}

// captureStdout runs f with os.Stdout redirected to a pipe and returns what
// it printed.
func captureStdout(t *testing.T, f func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	f()
	w.Close()
	b, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestCmdWhatifSemiring runs the whatif command on each wire-selectable
// carrier over a natural-coefficient set: 2·a·b + 3·c.
func TestCmdWhatifSemiring(t *testing.T) {
	pvab := filepath.Join(t.TempDir(), "nat.pvab")
	vb := provenance.NewVocab()
	set := provenance.NewSet(vb)
	set.Add("q", provenance.MustParse(vb, "2·a·b + 3·c"))
	if err := writeSet(pvab, set); err != nil {
		t.Fatal(err)
	}
	for name, tc := range map[string]struct {
		args []string
		want string
	}{
		"count": {[]string{"-in", pvab, "-sets", "a=2,b=1,c=0", "-semiring", "count"},
			"             4"}, // 2·2·1 + 3·0
		"bool": {[]string{"-in", pvab, "-sets", "a=0", "-semiring", "bool"},
			"true"}, // c unassigned keeps the identity: derivable
		"tropical": {[]string{"-in", pvab, "-sets", "a=5,b=7,c=100", "-semiring", "tropical"},
			"            12"}, // min(0+5+7, 0+100)
		"minmax": {[]string{"-in", pvab, "-sets", "a=1,b=2,c=5", "-semiring", "minmax"},
			"             5"}, // max(min(1,2), 5)
		"generated": {[]string{"-in", pvab, "-scenarios", "8", "-semiring", "bool"},
			"evaluated 8 scenarios in the bool semiring"},
	} {
		out := captureStdout(t, func() {
			if err := cmdWhatif(tc.args); err != nil {
				t.Errorf("%s: %v", name, err)
			}
		})
		if !strings.Contains(out, tc.want) {
			t.Errorf("%s: output does not contain %q:\n%s", name, tc.want, out)
		}
	}
	if err := cmdWhatif([]string{"-in", pvab, "-sets", "a=1", "-semiring", "galois"}); err == nil {
		t.Error("unknown -semiring accepted, want error")
	}
	// Fractional coefficients are rejected by the natural-coefficient
	// carriers at compile time.
	frac := filepath.Join(t.TempDir(), "frac.pvab")
	vb2 := provenance.NewVocab()
	set2 := provenance.NewSet(vb2)
	set2.Add("q", provenance.MustParse(vb2, "2.5·a"))
	if err := writeSet(frac, set2); err != nil {
		t.Fatal(err)
	}
	if err := cmdWhatif([]string{"-in", frac, "-sets", "a=1", "-semiring", "count"}); err == nil {
		t.Error("fractional coefficients accepted under count, want error")
	}
}
