package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestParseScenario(t *testing.T) {
	sc, err := parseScenario("a=1, b = 0.5 ,c=-2")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{"a": 1, "b": 0.5, "c": -2}
	if len(sc.Assign) != len(want) {
		t.Fatalf("Assign = %v, want %v", sc.Assign, want)
	}
	for k, v := range want {
		if sc.Assign[k] != v {
			t.Errorf("Assign[%q] = %v, want %v", k, sc.Assign[k], v)
		}
	}
}

func TestParseScenarioMalformed(t *testing.T) {
	for _, bad := range []string{
		"",      // no assignment at all
		"a",     // missing =value
		"a=",    // empty value
		"a=x",   // non-numeric value
		"a=1,b", // valid then invalid
		"a=1=2", // value with stray =
		"a==2",  // double separator
	} {
		if _, err := parseScenario(bad); err == nil {
			t.Errorf("parseScenario(%q) succeeded, want error", bad)
		}
	}
}

// TestServeEndToEnd is the acceptance check for the what-if server: build
// the real binary, generate provenance, start `provabs serve`, and answer a
// streamed NDJSON batch of scenarios over HTTP.
func TestServeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping binary-level integration test in -short mode")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "provabs")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	pvab := filepath.Join(dir, "t.pvab")
	gen := exec.Command(bin, "generate", "-dataset", "telco",
		"-customers", "50", "-zips", "5", "-out", pvab)
	if out, err := gen.CombinedOutput(); err != nil {
		t.Fatalf("generate: %v\n%s", err, out)
	}

	srv := exec.Command(bin, "serve", "-in", pvab, "-addr", "127.0.0.1:0",
		"-tree", "Quarters(q1(m1,m2,m3),q2(m4,m5,m6),q3(m7,m8,m9),q4(m10,m11,m12))",
		"-algo", "greedy", "-ratio", "0.6")
	stdout, err := srv.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	srv.Stderr = os.Stderr
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		srv.Process.Kill()
		srv.Wait()
	}()

	// The server prints "serving … on http://ADDR" once it is listening.
	var base string
	scan := bufio.NewScanner(stdout)
	deadline := time.After(30 * time.Second)
	addrCh := make(chan string, 1)
	go func() {
		for scan.Scan() {
			line := scan.Text()
			if i := strings.Index(line, "http://"); i >= 0 {
				addrCh <- strings.TrimSpace(line[i:])
				break
			}
		}
	}()
	select {
	case base = <-addrCh:
	case <-deadline:
		t.Fatal("server did not report its address in time")
	}

	// Stream a small NDJSON batch: a quarter-uniform scenario, an erroneous
	// one, and a per-month scenario.
	batch := strings.Join([]string{
		`{"assign":{"q1":0.8}}`,
		`{"assign":{"no_such_variable":1}}`,
		`{"assign":{"m1":0.5,"m2":0.5}}`,
	}, "\n")
	resp, err := http.Post(base+"/whatif/stream", "application/x-ndjson", strings.NewReader(batch))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	type line struct {
		Index   int `json:"index"`
		Answers []struct {
			Tag   string  `json:"tag"`
			Value float64 `json:"value"`
		} `json:"answers"`
		Error string `json:"error"`
	}
	var lines []line
	rscan := bufio.NewScanner(resp.Body)
	for rscan.Scan() {
		var l line
		if err := json.Unmarshal(rscan.Bytes(), &l); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", rscan.Text(), err)
		}
		lines = append(lines, l)
	}
	if err := rscan.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lines) != 3 {
		t.Fatalf("streamed %d result lines, want 3: %+v", len(lines), lines)
	}
	if lines[0].Error != "" || len(lines[0].Answers) == 0 {
		t.Errorf("first scenario: %+v, want answers", lines[0])
	}
	if lines[1].Error == "" {
		t.Errorf("second scenario: %+v, want in-band error", lines[1])
	}
	if lines[2].Error != "" || len(lines[2].Answers) == 0 {
		t.Errorf("third scenario: %+v, want answers", lines[2])
	}

	// Single-scenario endpoint and stats agree with the stream.
	single, err := http.Post(base+"/whatif", "application/json",
		bytes.NewReader([]byte(`{"assign":{"q1":0.8}}`)))
	if err != nil {
		t.Fatal(err)
	}
	defer single.Body.Close()
	if single.StatusCode != http.StatusOK {
		t.Fatalf("single whatif status = %d, want 200", single.StatusCode)
	}
	stats, err := http.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer stats.Body.Close()
	var st struct {
		Compressed bool  `json:"compressed"`
		Scenarios  int64 `json:"scenarios_evaluated"`
		Compiles   int64 `json:"compiles"`
	}
	if err := json.NewDecoder(stats.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if !st.Compressed {
		t.Error("stats report an uncompressed session, want compressed at startup")
	}
	if st.Scenarios < 3 {
		t.Errorf("stats report %d scenarios, want >= 3", st.Scenarios)
	}
	if st.Compiles != 1 {
		t.Errorf("stats report %d compiles, want 1 (compile-once across the stream)", st.Compiles)
	}
}
