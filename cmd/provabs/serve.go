package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"time"

	"provabs/internal/abstree"
	"provabs/internal/server"
	"provabs/internal/session"
)

// cmdServe runs the streaming what-if server: load a provenance file into a
// session Engine (optionally compressing it at startup), then answer
// scenario streams over HTTP — POST /whatif for one scenario, POST
// /whatif/stream for an NDJSON batch, POST /compress to (re)compress the
// live session, GET /stats for session statistics.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	in := fs.String("in", "", "provenance file (required)")
	addr := fs.String("addr", ":8080", "listen address (use :0 for an ephemeral port)")
	treeSrc := fs.String("tree", "", "abstraction tree(s) in compact format, ';'-separated")
	shapeSrc := fs.String("shape", "", "build a uniform tree instead: comma-separated fan-outs, e.g. 2,64")
	prefix := fs.String("prefix", "s", "leaf prefix for -shape trees (s, p, pl)")
	algo := fs.String("algo", "auto", "startup compression strategy: auto, opt, greedy, brute, ainy or online")
	bound := fs.Int("bound", 0, "compress at startup to this monomial bound (overrides -ratio)")
	ratio := fs.Float64("ratio", 0, "compress at startup to this fraction of |P|_M (0 = serve uncompressed)")
	fraction := fs.Float64("fraction", 0.3, "online: sample fraction")
	timeout := fs.Duration("timeout", time.Minute, "ainy: cutoff")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	deltaCutoff := fs.Float64("delta-cutoff", 0,
		"delta-vs-full density cutoff (0 = default, negative = always evaluate in full)")
	streamBuffer := fs.Int("stream-buffer", 0,
		"output buffer of /whatif/stream so slow clients don't stall evaluation (0 = batch size)")
	streamBatch := fs.Int("stream-batch", 0,
		"max scenarios drained into one micro-batched stream evaluation (0 = default 64)")
	fs.Parse(args)
	set, err := readSet(*in)
	if err != nil {
		return err
	}
	var forest *abstree.Forest
	if *treeSrc != "" || *shapeSrc != "" {
		forest, err = buildForest(*treeSrc, *shapeSrc, *prefix)
		if err != nil {
			return err
		}
	}
	eng, err := session.Open(set, forest,
		session.WithWorkers(*workers),
		session.WithDeltaCutoff(*deltaCutoff),
		session.WithStreamBuffer(*streamBuffer),
		session.WithStreamBatch(*streamBatch))
	if err != nil {
		return err
	}
	if forest == nil && (*bound > 0 || *ratio > 0) {
		return fmt.Errorf("serve: -bound/-ratio require -tree or -shape")
	}
	if forest != nil && (*bound > 0 || *ratio > 0) {
		strategy, err := session.ParseStrategy(*algo)
		if err != nil {
			return err
		}
		comp, err := eng.Compress(resolveBound(*bound, *ratio, set.Size()),
			session.WithStrategy(strategy),
			session.WithSamplingFraction(*fraction),
			session.WithTimeout(*timeout))
		if err != nil {
			return err
		}
		fmt.Printf("compressed with %s: %d -> %d monomials (%s) in %v\n",
			comp.Strategy, set.Size(), comp.Abstracted.Size(), adequacy(comp.Adequate), comp.Elapsed)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	st := eng.Stats()
	fmt.Printf("serving %d polynomials / %d monomials on http://%s\n",
		st.Polynomials, st.Monomials, ln.Addr())
	fmt.Println("endpoints: POST /whatif, POST /whatif/stream (NDJSON), POST /compress, GET /stats")
	return http.Serve(ln, server.New(eng).Handler())
}
