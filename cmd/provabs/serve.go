package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"provabs/internal/abstree"
	"provabs/internal/durable"
	"provabs/internal/registry"
	"provabs/internal/server"
	"provabs/internal/session"
)

// loadSpec is one -load flag: a named session and its provenance file.
type loadSpec struct {
	name, path string
}

// loadFlags collects repeated -load name=path flags in order.
type loadFlags []loadSpec

func (l *loadFlags) String() string {
	parts := make([]string, len(*l))
	for i, s := range *l {
		parts[i] = s.name + "=" + s.path
	}
	return strings.Join(parts, ",")
}

func (l *loadFlags) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok || name == "" || path == "" {
		return fmt.Errorf("want name=path, got %q", v)
	}
	*l = append(*l, loadSpec{name: name, path: path})
	return nil
}

// cmdServe runs the multi-session what-if server: load one provenance file
// per -load flag into a named session (optionally compressing each at
// startup), then serve the versioned v1 API — session lifecycle, what-ifs,
// NDJSON streams, per-session and aggregate stats. The legacy unversioned
// routes alias onto the -default session.
//
// With -durable the -session-dir doubles as a durable store root: every
// session persists (initial snapshot + write-ahead-logged adds), a restart
// finds the previous process's sessions dormant and recovers each lazily
// on first touch, and SIGINT/SIGTERM shuts down gracefully — stop
// accepting, drain live NDJSON streams within -drain-timeout, checkpoint
// every session (final snapshot + fsync), exit 0.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	var loads loadFlags
	fs.Var(&loads, "load", "load a session at startup: name=path (repeatable)")
	in := fs.String("in", "", "provenance file for a single-session server (shorthand for -load default=PATH)")
	def := fs.String("default", "", "session served by the legacy unversioned routes (default: the first loaded)")
	addr := fs.String("addr", ":8080", "listen address (use :0 for an ephemeral port)")
	treeSrc := fs.String("tree", "", "abstraction tree(s) in compact format, ';'-separated (applied to every loaded session)")
	shapeSrc := fs.String("shape", "", "build a uniform tree instead: comma-separated fan-outs, e.g. 2,64")
	prefix := fs.String("prefix", "s", "leaf prefix for -shape trees (s, p, pl)")
	algo := fs.String("algo", "auto", "startup compression strategy: auto, opt, greedy, brute, ainy or online")
	bound := fs.Int("bound", 0, "compress each session at startup to this monomial bound (overrides -ratio)")
	ratio := fs.Float64("ratio", 0, "compress at startup to this fraction of |P|_M (0 = serve uncompressed)")
	fraction := fs.Float64("fraction", 0.3, "online: sample fraction")
	timeout := fs.Duration("timeout", time.Minute, "ainy: cutoff")
	workers := fs.Int("workers", 0, "worker pool size per session (0 = GOMAXPROCS)")
	deltaCutoff := fs.Float64("delta-cutoff", 0,
		"delta-vs-full density cutoff (0 = adaptive, learned from observed timings; >0 = static fraction; negative = always evaluate in full)")
	streamBuffer := fs.Int("stream-buffer", 0,
		"output buffer of whatif/stream so slow clients don't stall evaluation (0 = batch size)")
	streamBatch := fs.Int("stream-batch", 0,
		"max scenarios drained into one micro-batched stream evaluation (0 = default 64)")
	sessionDir := fs.String("session-dir", ".",
		"root for POST /v1/sessions {\"path\":...} provenance files (empty = disable path loading); with -durable, also the durable store root")
	durableFlag := fs.Bool("durable", false,
		"persist sessions under -session-dir: snapshot + WAL per session, lazy recovery on restart")
	walSyncWindow := fs.Duration("wal-sync-window", 0,
		"group-commit window for durable adds (0 = fsync every add; a small window batches concurrent adds into one fsync)")
	drainTimeout := fs.Duration("drain-timeout", 10*time.Second,
		"graceful-shutdown deadline: how long SIGINT/SIGTERM waits for live streams to finish before closing connections")
	maxStreams := fs.Int("max-streams", 0,
		"max concurrently open NDJSON streams; past it new streams get 503 + Retry-After (0 = unbounded)")
	fs.Parse(args)

	if *in != "" {
		loads = append(loadFlags{{name: "default", path: *in}}, loads...)
	}
	if *durableFlag && *sessionDir == "" {
		return fmt.Errorf("serve: -durable needs a -session-dir to persist into")
	}
	if len(loads) == 0 && !*durableFlag {
		return fmt.Errorf("serve: provide at least one session via -load name=path (or -in path)")
	}
	if (*bound > 0 || *ratio > 0) && *treeSrc == "" && *shapeSrc == "" {
		return fmt.Errorf("serve: -bound/-ratio require -tree or -shape")
	}
	var forest *abstree.Forest
	var err error
	if *treeSrc != "" || *shapeSrc != "" {
		forest, err = buildForest(*treeSrc, *shapeSrc, *prefix)
		if err != nil {
			return err
		}
	}

	engineOpts := []session.Option{
		session.WithWorkers(*workers),
		session.WithDeltaCutoff(*deltaCutoff),
		session.WithStreamBuffer(*streamBuffer),
		session.WithStreamBatch(*streamBatch),
	}
	reg := registry.New()
	if *durableFlag {
		err := reg.EnableDurability(*sessionDir, durable.Options{
			GroupWindow: *walSyncWindow,
			Logf:        log.Printf,
		}, engineOpts...)
		if err != nil {
			return fmt.Errorf("serve: %w", err)
		}
		if dormant := reg.DormantNames(); len(dormant) > 0 {
			fmt.Printf("found %d durable session(s) in %s: %s (recovered lazily on first touch)\n",
				len(dormant), *sessionDir, strings.Join(dormant, ", "))
		}
	}
	for _, load := range loads {
		set, err := readSet(load.path)
		if err != nil {
			return fmt.Errorf("serve: session %q: %w", load.name, err)
		}
		sess, err := reg.Create(load.name, set, forest, engineOpts...)
		if errors.Is(err, registry.ErrExists) && *durableFlag {
			// A warm restart already holds this session's durable state; the
			// on-disk copy — which includes any adds since the original load —
			// wins over re-loading the file.
			fmt.Printf("session %q already durable in %s; skipping -load\n", load.name, *sessionDir)
			continue
		}
		if err != nil {
			return fmt.Errorf("serve: %w", err)
		}
		if forest != nil && (*bound > 0 || *ratio > 0) {
			strategy, err := session.ParseStrategy(*algo)
			if err != nil {
				return err
			}
			comp, err := sess.Engine().Compress(resolveBound(*bound, *ratio, set.Size()),
				session.WithStrategy(strategy),
				session.WithSamplingFraction(*fraction),
				session.WithTimeout(*timeout))
			if err != nil {
				return fmt.Errorf("serve: session %q: %w", load.name, err)
			}
			fmt.Printf("session %q compressed with %s: %d -> %d monomials (%s) in %v\n",
				load.name, comp.Strategy, set.Size(), comp.Abstracted.Size(),
				adequacy(comp.Adequate), comp.Elapsed)
		}
		st := sess.Engine().Stats()
		fmt.Printf("session %q: %d polynomials / %d monomials from %s\n",
			load.name, st.Polynomials, st.Monomials, load.path)
	}
	if *def != "" {
		if err := reg.SetDefault(*def); err != nil {
			return fmt.Errorf("serve: -default: %w", err)
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Printf("serving %d session(s) on http://%s (default %q)\n",
		reg.Len(), ln.Addr(), reg.DefaultName())
	fmt.Println("endpoints: POST/GET /v1/sessions, GET|DELETE /v1/sessions/{name}, " +
		"POST /v1/sessions/{name}/whatif[/stream], POST /v1/sessions/{name}/add, " +
		"POST /v1/sessions/{name}/export, POST /v1/sessions/{name}/compress, " +
		"GET /v1/sessions/{name}/stats, GET /v1/stats")
	fmt.Println("legacy aliases on the default session: POST /whatif, POST /whatif/stream, POST /compress, GET /stats")

	srv := server.New(reg, server.WithSessionDir(*sessionDir), server.WithMaxStreams(*maxStreams))
	httpSrv := &http.Server{
		Handler: srv.Handler(),
		// Slowloris protection: a client must finish its request header
		// promptly, and idle keep-alive connections are reclaimed. No
		// blanket ReadTimeout/WriteTimeout — NDJSON streams are long-lived
		// by design.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	// SIGINT/SIGTERM starts the graceful exit: stop accepting, kick live
	// NDJSON streams off their body reads (in-flight micro-batches still
	// answer), and give connections -drain-timeout to finish before they
	// are closed. The durable checkpoint below waits for the drain, so a
	// clean shutdown snapshots exactly what was acknowledged.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-ctx.Done()
		fmt.Println("shutting down: draining live streams")
		srv.Drain()
		sctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := httpSrv.Shutdown(sctx); err != nil {
			log.Printf("serve: drain deadline exceeded, closing connections: %v", err)
			httpSrv.Close()
		}
	}()

	err = httpSrv.Serve(ln)
	if !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	<-drained
	if reg.Durable() {
		if err := reg.Shutdown(); err != nil {
			return fmt.Errorf("serve: final checkpoint: %w", err)
		}
		fmt.Println("sessions checkpointed; bye")
	}
	return nil
}
