package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"strings"
	"time"

	"provabs/internal/abstree"
	"provabs/internal/registry"
	"provabs/internal/server"
	"provabs/internal/session"
)

// loadSpec is one -load flag: a named session and its provenance file.
type loadSpec struct {
	name, path string
}

// loadFlags collects repeated -load name=path flags in order.
type loadFlags []loadSpec

func (l *loadFlags) String() string {
	parts := make([]string, len(*l))
	for i, s := range *l {
		parts[i] = s.name + "=" + s.path
	}
	return strings.Join(parts, ",")
}

func (l *loadFlags) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok || name == "" || path == "" {
		return fmt.Errorf("want name=path, got %q", v)
	}
	*l = append(*l, loadSpec{name: name, path: path})
	return nil
}

// cmdServe runs the multi-session what-if server: load one provenance file
// per -load flag into a named session (optionally compressing each at
// startup), then serve the versioned v1 API — session lifecycle, what-ifs,
// NDJSON streams, per-session and aggregate stats. The legacy unversioned
// routes alias onto the -default session.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	var loads loadFlags
	fs.Var(&loads, "load", "load a session at startup: name=path (repeatable)")
	in := fs.String("in", "", "provenance file for a single-session server (shorthand for -load default=PATH)")
	def := fs.String("default", "", "session served by the legacy unversioned routes (default: the first loaded)")
	addr := fs.String("addr", ":8080", "listen address (use :0 for an ephemeral port)")
	treeSrc := fs.String("tree", "", "abstraction tree(s) in compact format, ';'-separated (applied to every loaded session)")
	shapeSrc := fs.String("shape", "", "build a uniform tree instead: comma-separated fan-outs, e.g. 2,64")
	prefix := fs.String("prefix", "s", "leaf prefix for -shape trees (s, p, pl)")
	algo := fs.String("algo", "auto", "startup compression strategy: auto, opt, greedy, brute, ainy or online")
	bound := fs.Int("bound", 0, "compress each session at startup to this monomial bound (overrides -ratio)")
	ratio := fs.Float64("ratio", 0, "compress at startup to this fraction of |P|_M (0 = serve uncompressed)")
	fraction := fs.Float64("fraction", 0.3, "online: sample fraction")
	timeout := fs.Duration("timeout", time.Minute, "ainy: cutoff")
	workers := fs.Int("workers", 0, "worker pool size per session (0 = GOMAXPROCS)")
	deltaCutoff := fs.Float64("delta-cutoff", 0,
		"delta-vs-full density cutoff (0 = adaptive, learned from observed timings; >0 = static fraction; negative = always evaluate in full)")
	streamBuffer := fs.Int("stream-buffer", 0,
		"output buffer of whatif/stream so slow clients don't stall evaluation (0 = batch size)")
	streamBatch := fs.Int("stream-batch", 0,
		"max scenarios drained into one micro-batched stream evaluation (0 = default 64)")
	sessionDir := fs.String("session-dir", ".",
		"root for POST /v1/sessions {\"path\":...} provenance files (empty = disable path loading)")
	fs.Parse(args)

	if *in != "" {
		loads = append(loadFlags{{name: "default", path: *in}}, loads...)
	}
	if len(loads) == 0 {
		return fmt.Errorf("serve: provide at least one session via -load name=path (or -in path)")
	}
	if (*bound > 0 || *ratio > 0) && *treeSrc == "" && *shapeSrc == "" {
		return fmt.Errorf("serve: -bound/-ratio require -tree or -shape")
	}
	var forest *abstree.Forest
	var err error
	if *treeSrc != "" || *shapeSrc != "" {
		forest, err = buildForest(*treeSrc, *shapeSrc, *prefix)
		if err != nil {
			return err
		}
	}

	reg := registry.New()
	for _, load := range loads {
		set, err := readSet(load.path)
		if err != nil {
			return fmt.Errorf("serve: session %q: %w", load.name, err)
		}
		sess, err := reg.Create(load.name, set, forest,
			session.WithWorkers(*workers),
			session.WithDeltaCutoff(*deltaCutoff),
			session.WithStreamBuffer(*streamBuffer),
			session.WithStreamBatch(*streamBatch))
		if err != nil {
			return fmt.Errorf("serve: %w", err)
		}
		if forest != nil && (*bound > 0 || *ratio > 0) {
			strategy, err := session.ParseStrategy(*algo)
			if err != nil {
				return err
			}
			comp, err := sess.Engine().Compress(resolveBound(*bound, *ratio, set.Size()),
				session.WithStrategy(strategy),
				session.WithSamplingFraction(*fraction),
				session.WithTimeout(*timeout))
			if err != nil {
				return fmt.Errorf("serve: session %q: %w", load.name, err)
			}
			fmt.Printf("session %q compressed with %s: %d -> %d monomials (%s) in %v\n",
				load.name, comp.Strategy, set.Size(), comp.Abstracted.Size(),
				adequacy(comp.Adequate), comp.Elapsed)
		}
		st := sess.Engine().Stats()
		fmt.Printf("session %q: %d polynomials / %d monomials from %s\n",
			load.name, st.Polynomials, st.Monomials, load.path)
	}
	if *def != "" {
		if err := reg.SetDefault(*def); err != nil {
			return fmt.Errorf("serve: -default: %w", err)
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Printf("serving %d session(s) on http://%s (default %q)\n",
		reg.Len(), ln.Addr(), reg.DefaultName())
	fmt.Println("endpoints: POST/GET /v1/sessions, GET|DELETE /v1/sessions/{name}, " +
		"POST /v1/sessions/{name}/whatif[/stream], POST /v1/sessions/{name}/compress, " +
		"GET /v1/sessions/{name}/stats, GET /v1/stats")
	fmt.Println("legacy aliases on the default session: POST /whatif, POST /whatif/stream, POST /compress, GET /stats")
	return http.Serve(ln, server.New(reg, server.WithSessionDir(*sessionDir)).Handler())
}
