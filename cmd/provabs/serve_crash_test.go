package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"provabs/internal/hypo"
	"provabs/internal/provenance"
	"provabs/internal/session"
)

// crashBasePoly is the seed polynomial; crashAddPoly(i) is the i-th add the
// test streams in (the new variable "extra" exercises vocab-record replay).
const crashBasePoly = "220.8·p1·m1 + 240·p1·m3 + 127.4·f1·m1 + 114.45·f1·m3"

func crashAddPoly(i int) string {
	return fmt.Sprintf("%d·p1·extra + %d·m1", i+2, i+1)
}

// buildProvabs compiles the real binary once per test into dir.
func buildProvabs(t *testing.T, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "provabs")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// startServe launches the binary with args (plus env), waits for the
// "serving … on http://ADDR" line, and returns the process and base URL.
func startServe(t *testing.T, bin string, env []string, args ...string) (*exec.Cmd, string) {
	t.Helper()
	srv := exec.Command(bin, append([]string{"serve"}, args...)...)
	srv.Env = append(os.Environ(), env...)
	stdout, err := srv.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	srv.Stderr = os.Stderr
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	addrCh := make(chan string, 1)
	go func() {
		scan := bufio.NewScanner(stdout)
		for scan.Scan() {
			line := scan.Text()
			if i := strings.Index(line, "http://"); i >= 0 {
				addrCh <- strings.Fields(line[i:])[0]
				break
			}
		}
		// Keep draining so the child never blocks on a full stdout pipe.
		for scan.Scan() {
		}
	}()
	select {
	case base := <-addrCh:
		return srv, base
	case <-time.After(30 * time.Second):
		srv.Process.Kill()
		srv.Wait()
		t.Fatal("server did not report its address in time")
		return nil, ""
	}
}

// TestServeCrashRecovery is the binary-level acceptance check for the
// durability tentpole: a `provabs serve -durable -session-dir` process is
// killed mid-add-stream at a WAL crash point, restarted over the same
// directory, and the recovered session must hold the acknowledged prefix
// of the stream and answer the golden what-if batch bit-identically to an
// engine rebuilt from scratch — with Compiles == 1, so recovery replayed
// appends instead of recompiling. A final SIGTERM must exit 0 and leave a
// rotated (empty) WAL behind.
func TestServeCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping binary-level integration test in -short mode")
	}
	dir := t.TempDir()
	bin := buildProvabs(t, dir)

	pvab := filepath.Join(dir, "s.pvab")
	vb := provenance.NewVocab()
	set := provenance.NewSet(vb)
	set.Add("base", provenance.MustParse(vb, crashBasePoly))
	if err := writeSet(pvab, set); err != nil {
		t.Fatal(err)
	}
	store := filepath.Join(dir, "store")

	// First life: crash after the 8th add's WAL frame is written, before
	// its fsync — the add stream dies mid-append with 7 acknowledged.
	srv, base := startServe(t, bin,
		[]string{"PROVABS_CRASH_POINT=wal.append:8"},
		"-durable", "-session-dir", store, "-load", "s="+pvab, "-addr", "127.0.0.1:0")

	const total = 20
	pr, pw := io.Pipe()
	req, err := http.NewRequest("POST", base+"/v1/sessions/s/add", pr)
	if err != nil {
		t.Fatal(err)
	}
	type respOrErr struct {
		resp *http.Response
		err  error
	}
	respCh := make(chan respOrErr, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		respCh <- respOrErr{resp, err}
	}()
	line := func(i int) string {
		return fmt.Sprintf("{\"tag\":\"t%d\",\"poly\":%q}\n", i, crashAddPoly(i))
	}
	if _, err := pw.Write([]byte(line(0))); err != nil {
		t.Fatal(err)
	}
	first := <-respCh
	acked := 0
	if first.err == nil {
		defer first.resp.Body.Close()
		scan := bufio.NewScanner(first.resp.Body)
		for i := 0; i < total; i++ {
			if i > 0 {
				if _, err := pw.Write([]byte(line(i))); err != nil {
					break
				}
			}
			if !scan.Scan() {
				break
			}
			var ack struct {
				Index int    `json:"index"`
				Error string `json:"error"`
			}
			if err := json.Unmarshal(scan.Bytes(), &ack); err != nil || ack.Error != "" {
				t.Fatalf("ack %d = %q (%v)", i, scan.Text(), err)
			}
			acked++
		}
	}
	pw.Close()
	if acked == 0 || acked >= total {
		t.Fatalf("acked %d of %d adds; the crash point did not fire mid-stream", acked, total)
	}
	werr := srv.Wait()
	var exit *exec.ExitError
	if !errors.As(werr, &exit) || exit.ExitCode() != 42 {
		t.Fatalf("crashed process exit = %v, want crash-point code 42", werr)
	}

	// Second life: warm restart over the same store, no -load needed. The
	// session recovers lazily on first touch.
	srv2, base2 := startServe(t, bin, nil,
		"-durable", "-session-dir", store, "-addr", "127.0.0.1:0")
	defer func() {
		srv2.Process.Kill()
		srv2.Wait()
	}()

	var stats struct {
		Polynomials int64 `json:"polynomials"`
		Compiles    int64 `json:"compiles"`
	}
	getStats := func(base string) {
		t.Helper()
		resp, err := http.Get(base + "/v1/sessions/s/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("stats status = %d, want 200 (session did not recover)", resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
			t.Fatal(err)
		}
	}
	getStats(base2)
	recovered := int(stats.Polynomials) - 1 // minus the -load seed polynomial
	if recovered < acked || recovered >= total {
		t.Fatalf("recovered %d adds, acked %d: every acknowledged add must survive", recovered, acked)
	}

	// Golden what-if batch: the recovered session must answer bit-identically
	// to an engine rebuilt from the seed set plus the recovered add prefix.
	refVb := provenance.NewVocab()
	refSet := provenance.NewSet(refVb)
	refSet.Add("base", provenance.MustParse(refVb, crashBasePoly))
	for i := 0; i < recovered; i++ {
		refSet.Add(fmt.Sprintf("t%d", i), provenance.MustParse(refVb, crashAddPoly(i)))
	}
	ref, err := session.Open(refSet, nil)
	if err != nil {
		t.Fatal(err)
	}
	golden := []*hypo.Scenario{
		hypo.NewScenario().Set("m1", 0.5),
		hypo.NewScenario().Set("p1", 0.25).Set("extra", 2),
		hypo.NewScenario().Set("m1", 0).Set("m3", 0).Set("extra", 0),
		hypo.NewScenario().Set("f1", 3).Set("m3", 0.125),
	}
	goldenJSON := []string{
		`{"assign":{"m1":0.5}}`,
		`{"assign":{"p1":0.25,"extra":2}}`,
		`{"assign":{"m1":0,"m3":0,"extra":0}}`,
		`{"assign":{"f1":3,"m3":0.125}}`,
	}
	rows, err := ref.WhatIfBatch(golden)
	if err != nil {
		t.Fatal(err)
	}
	for i, body := range goldenJSON {
		resp, err := http.Post(base2+"/v1/sessions/s/whatif", "application/json",
			strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var got struct {
			Answers []struct {
				Tag   string  `json:"tag"`
				Value float64 `json:"value"`
			} `json:"answers"`
		}
		err = json.NewDecoder(resp.Body).Decode(&got)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Answers) != len(rows[i]) {
			t.Fatalf("scenario %d: %d answers, want %d", i, len(got.Answers), len(rows[i]))
		}
		for j, want := range rows[i] {
			if got.Answers[j].Tag != want.Tag ||
				math.Float64bits(got.Answers[j].Value) != math.Float64bits(want.Value) {
				t.Errorf("scenario %d answer %d = %s %v, want %s %v (bit-exact)",
					i, j, got.Answers[j].Tag, got.Answers[j].Value, want.Tag, want.Value)
			}
		}
	}
	getStats(base2)
	if stats.Compiles != 1 {
		t.Errorf("recovered Compiles = %d, want 1 (WAL replay must append, not recompile)", stats.Compiles)
	}

	// Graceful exit: SIGTERM drains, checkpoints (snapshot + fsync, WAL
	// rotated empty) and exits 0.
	if err := srv2.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := srv2.Wait(); err != nil {
		t.Fatalf("SIGTERM exit = %v, want 0", err)
	}

	// Third life: a clean shutdown means recovery replays zero WAL records.
	srv3, base3 := startServe(t, bin, nil,
		"-durable", "-session-dir", store, "-addr", "127.0.0.1:0")
	defer func() {
		srv3.Process.Signal(syscall.SIGTERM)
		srv3.Wait()
	}()
	getStats(base3) // touch: triggers recovery
	if int(stats.Polynomials)-1 != recovered {
		t.Errorf("third life holds %d adds, want %d", stats.Polynomials-1, recovered)
	}
	resp, err := http.Get(base3 + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var agg struct {
		Recoveries int64 `json:"recoveries"`
		WALRecords int64 `json:"wal_records_replayed"`
	}
	err = json.NewDecoder(resp.Body).Decode(&agg)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if agg.Recoveries != 1 || agg.WALRecords != 0 {
		t.Errorf("after clean shutdown: recoveries=%d wal_records_replayed=%d, want 1/0 (snapshot covers everything)",
			agg.Recoveries, agg.WALRecords)
	}
}
