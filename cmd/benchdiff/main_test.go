package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// write puts a small BENCH-shaped report on disk.
func write(t *testing.T, dir, name, body string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const oldReport = `{"gomaxprocs":1,"workloads":{"telco":{"benchmarks":{
  "batch100-sparse":{"ns_per_op":1000,"allocs_per_op":400},
  "full-eval":{"ns_per_op":500}}}}}`

// TestCollect exercises the pure walking/keying logic directly.
func TestCollect(t *testing.T) {
	dir := t.TempDir()
	rep, err := loadReport(write(t, dir, "old.json", oldReport))
	if err != nil {
		t.Fatal(err)
	}
	if m, ok := rep["telco/batch100-sparse"]; !ok || m.NsPerOp != 1000 {
		t.Fatalf("collected %v, want telco/batch100-sparse @ 1000", rep)
	}
	if m, ok := rep["telco/full-eval"]; !ok || m.NsPerOp != 500 {
		t.Fatalf("collected %v, want telco/full-eval @ 500", rep)
	}
	if _, err := loadReport(write(t, dir, "empty.json", `{"nothing":1}`)); err == nil {
		t.Fatal("report without benchmark entries accepted")
	}
}

// run builds nothing: it executes the command via `go run .` so the test
// covers flag handling and exit codes end to end.
func run(t *testing.T, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run", "."}, args...)...)
	out, err := cmd.CombinedOutput()
	code := 0
	if exit, ok := err.(*exec.ExitError); ok {
		code = exit.ExitCode()
	} else if err != nil {
		t.Fatal(err)
	}
	return string(out), code
}

func TestBenchdiffEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go run")
	}
	dir := t.TempDir()
	oldPath := write(t, dir, "old.json", oldReport)
	okPath := write(t, dir, "ok.json", `{"workloads":{"telco":{"benchmarks":{
	  "batch100-sparse":{"ns_per_op":1100},"full-eval":{"ns_per_op":400}}}}}`)
	badPath := write(t, dir, "bad.json", `{"workloads":{"telco":{"benchmarks":{
	  "batch100-sparse":{"ns_per_op":2000},"full-eval":{"ns_per_op":400}}}}}`)

	out, code := run(t, oldPath, okPath)
	if code != 0 {
		t.Fatalf("within-tolerance diff failed (%d):\n%s", code, out)
	}
	out, code = run(t, oldPath, badPath)
	if code != 1 || !strings.Contains(out, "REGRESSION") {
		t.Fatalf("2x regression passed (%d):\n%s", code, out)
	}
	// A generous tolerance lets the same regression through.
	out, code = run(t, "-tolerance", "1.5", oldPath, badPath)
	if code != 0 {
		t.Fatalf("regression within raised tolerance failed (%d):\n%s", code, out)
	}
	// Gating a series missing from one report must fail, not silently pass.
	out, code = run(t, "-series", "renamed-away", oldPath, okPath)
	if code != 1 || !strings.Contains(out, "renamed-away") {
		t.Fatalf("missing gated series passed (%d):\n%s", code, out)
	}
	// Gating only the healthy series ignores the regressed one.
	out, code = run(t, "-series", "full-eval", oldPath, badPath)
	if code != 0 {
		t.Fatalf("gated healthy series failed (%d):\n%s", code, out)
	}
}
