// Command benchdiff compares two BENCH_*.json reports and fails (exit 1)
// when a named series regressed beyond the tolerance — the CI guard that
// keeps the recorded perf trajectory honest across PRs.
//
//	benchdiff -series batch100-sparse,full-eval OLD.json NEW.json
//	benchdiff -tolerance 0.25 BENCH_3.json BENCH_5.json
//
// A series is any benchmark entry (an object carrying "ns_per_op") found
// anywhere in the report, keyed by its workload and benchmark name
// ("telco/batch100-sparse"). -series selects benchmark names to gate
// (default: every name present in both files); a gated name must exist in
// both files for at least one workload, so a renamed or silently dropped
// benchmark fails the diff instead of passing unnoticed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

// metric is the ns/op payload of one benchmark entry.
type metric struct {
	NsPerOp float64 `json:"ns_per_op"`
}

// collect walks an arbitrary BENCH_*.json structure and gathers every
// object with an "ns_per_op" field, keyed by its path with the fixed
// structural segments ("workloads", "benchmarks") dropped — BENCH_3's
// workloads/telco/benchmarks/full-eval becomes "telco/full-eval".
func collect(v any, path []string, out map[string]metric) {
	obj, ok := v.(map[string]any)
	if !ok {
		return
	}
	if ns, ok := obj["ns_per_op"].(float64); ok {
		var parts []string
		for _, p := range path {
			if p != "workloads" && p != "benchmarks" {
				parts = append(parts, p)
			}
		}
		out[strings.Join(parts, "/")] = metric{NsPerOp: ns}
		return
	}
	for k, child := range obj {
		collect(child, append(path, k), out)
	}
}

func loadReport(path string) (map[string]metric, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var v any
	if err := json.Unmarshal(raw, &v); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := map[string]metric{}
	collect(v, nil, out)
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no benchmark entries (objects with ns_per_op) found", path)
	}
	return out, nil
}

// benchName is the benchmark part of a "workload/benchmark" key.
func benchName(key string) string {
	if i := strings.LastIndex(key, "/"); i >= 0 {
		return key[i+1:]
	}
	return key
}

func main() {
	tolerance := flag.Float64("tolerance", 0.25,
		"maximum allowed ns/op growth of a gated series (0.25 = +25%)")
	seriesFlag := flag.String("series", "",
		"comma-separated benchmark names to gate (default: every name present in both reports)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: benchdiff [-tolerance F] [-series a,b,...] OLD.json NEW.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	oldRep, err := loadReport(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	newRep, err := loadReport(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	gated := map[string]bool{}
	if *seriesFlag != "" {
		for _, s := range strings.Split(*seriesFlag, ",") {
			if s = strings.TrimSpace(s); s != "" {
				gated[s] = true
			}
		}
	}

	var keys []string
	for key := range oldRep {
		if _, ok := newRep[key]; !ok {
			continue
		}
		if len(gated) > 0 && !gated[benchName(key)] {
			continue
		}
		keys = append(keys, key)
	}
	sort.Strings(keys)

	// Every explicitly gated name must be matched somewhere, or the gate
	// is rotten (a benchmark was renamed or dropped).
	matched := map[string]bool{}
	for _, key := range keys {
		matched[benchName(key)] = true
	}
	failed := false
	for name := range gated {
		if !matched[name] {
			fmt.Fprintf(os.Stderr, "benchdiff: gated series %q not present in both reports\n", name)
			failed = true
		}
	}
	if len(keys) == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no comparable series between the two reports")
		failed = true
	}

	fmt.Printf("%-40s %14s %14s %9s\n", "series", "old ns/op", "new ns/op", "delta")
	for _, key := range keys {
		o, n := oldRep[key].NsPerOp, newRep[key].NsPerOp
		delta := 0.0
		if o > 0 {
			delta = n/o - 1
		}
		status := ""
		if o > 0 && n > o*(1+*tolerance) {
			status = "  REGRESSION"
			failed = true
		}
		fmt.Printf("%-40s %14.0f %14.0f %+8.1f%%%s\n", key, o, n, delta*100, status)
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchdiff: FAIL (tolerance %+.0f%%)\n", *tolerance*100)
		os.Exit(1)
	}
	fmt.Printf("benchdiff: ok (%d series within %+.0f%%)\n", len(keys), *tolerance*100)
}
