package provabs_test

// Cross-module integration tests: each test exercises a full paper
// workflow spanning the engine, the provenance model, the compression
// algorithms, the codec and the hypothetical-reasoning layer.

import (
	"bytes"
	"math"
	"testing"

	"provabs/internal/abstree"
	"provabs/internal/core"
	"provabs/internal/hypo"
	"provabs/internal/provenance"
	"provabs/internal/sampling"
	"provabs/internal/semiring"
	"provabs/internal/telco"
	"provabs/internal/tpch"
	"provabs/internal/treegen"
)

// TestPipelineTelcoScenarioExactness runs the complete offline pipeline on
// the telco workload and checks the end-to-end soundness property: a
// quarter-uniform scenario evaluated on the compressed provenance equals
// the same scenario on the uncompressed provenance, for every zip.
func TestPipelineTelcoScenarioExactness(t *testing.T) {
	ds, err := telco.Generate(telco.Config{Customers: 300, Plans: 32, Months: 12, Zips: 15, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	set, err := ds.Provenance()
	if err != nil {
		t.Fatal(err)
	}
	plansTree, err := telco.PlansTree(treegen.Shape{Fanouts: []int{4, 8}})
	if err != nil {
		t.Fatal(err)
	}
	forest := abstree.MustForest(plansTree, telco.QuarterTree())
	res, err := core.GreedyVVS(set, forest, set.Size()/2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Adequate {
		t.Fatalf("greedy missed the bound: ML=%d of %d", res.ML, set.Size()-set.Size()/2)
	}
	compressed := res.VVS.Apply(set)

	// Scenario on the abstraction's own variables (whatever the greedy
	// chose), lifted to the leaves for the reference evaluation.
	meta := hypo.NewScenario()
	for _, lbl := range res.VVS.Labels() {
		meta.Set(lbl, 0.75)
	}
	absVals, err := meta.Eval(compressed)
	if err != nil {
		t.Fatal(err)
	}
	origVals, err := meta.UniformOn(res.VVS).Eval(set)
	if err != nil {
		t.Fatal(err)
	}
	for i := range absVals {
		if math.Abs(absVals[i]-origVals[i]) > 1e-6*(1+math.Abs(origVals[i])) {
			t.Errorf("zip %s: compressed %v != original %v", set.Tags[i], absVals[i], origVals[i])
		}
	}
}

// TestPipelineShipToAnalyst emulates the paper's deployment story (§1
// "Offline vs. Online Compression"): compress at the server, encode, ship,
// decode at the analyst, and run scenarios on the decoded provenance.
func TestPipelineShipToAnalyst(t *testing.T) {
	d, err := tpch.Generate(tpch.Config{ScaleFactor: 0.002, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	set, err := d.Provenance(tpch.Q1)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := tpch.SupplierTree(treegen.SmallestOfType(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.OptimalVVS(set, tree, set.Size()/2)
	if err != nil {
		t.Fatal(err)
	}
	compressed := res.VVS.Apply(set)
	if provenance.EncodedSize(compressed) >= provenance.EncodedSize(set) {
		t.Error("compression did not shrink the shipped bytes")
	}

	var wire bytes.Buffer
	if err := provenance.Encode(&wire, compressed); err != nil {
		t.Fatal(err)
	}
	analystCopy, err := provenance.Decode(&wire)
	if err != nil {
		t.Fatal(err)
	}
	// Scenario fidelity across the wire: identical answers from the local
	// and the decoded copies.
	sc := hypo.NewScenario()
	for _, lbl := range res.VVS.Labels() {
		sc.Set(lbl, 0.9)
	}
	local, err := sc.Eval(compressed)
	if err != nil {
		t.Fatal(err)
	}
	remote, err := sc.Eval(analystCopy)
	if err != nil {
		t.Fatal(err)
	}
	for i := range local {
		if math.Abs(local[i]-remote[i]) > 1e-9*(1+math.Abs(local[i])) {
			t.Errorf("answer %d drifted across the wire: %v vs %v", i, local[i], remote[i])
		}
	}
}

// TestPipelineSemiringAfterAbstraction: abstraction is semantics-preserving
// in arbitrary semirings for group-uniform valuations — checked in the
// counting semiring over real Q10 provenance (natural coefficients).
func TestPipelineSemiringAfterAbstraction(t *testing.T) {
	vb := provenance.NewVocab()
	s := provenance.NewSet(vb)
	// Natural-coefficient provenance (semiring-eligible): three tuples per
	// group joining two annotated relations.
	s.Add("out1", provenance.MustParse(vb, "1·r1·s1 + 1·r2·s1 + 1·r3·s2"))
	s.Add("out2", provenance.MustParse(vb, "1·r1·s2 + 1·r2·s2"))
	forest := abstree.MustForest(abstree.MustParseTree("R(r1,r2,r3)"))
	v := abstree.MustFromLabels(forest, "R")
	abs := v.Apply(s)

	// Uniform counting valuation: every r_i worth 2, meta R worth 2.
	rVal, sVal := int64(2), int64(3)
	val := func(x provenance.Var) int64 {
		name := vb.Name(x)
		if name[0] == 'r' || name == "R" {
			return rVal
		}
		return sVal
	}
	for i := range s.Polys {
		a, err := semiring.Eval[int64](semiring.Counting{}, s.Polys[i], val)
		if err != nil {
			t.Fatal(err)
		}
		b, err := semiring.Eval[int64](semiring.Counting{}, abs.Polys[i], val)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Errorf("poly %d: counting eval %d != abstracted %d", i, a, b)
		}
	}
}

// TestPipelineOnlineMatchesOfflineAtFullFraction: sampling with fraction 1
// degenerates to the offline pipeline.
func TestPipelineOnlineMatchesOfflineAtFullFraction(t *testing.T) {
	set, err := telco.SyntheticProvenance(telco.Config{Customers: 250, Plans: 16, Months: 12, Zips: 12, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	plansTree, err := telco.PlansTree(treegen.Shape{Fanouts: []int{4, 4}})
	if err != nil {
		t.Fatal(err)
	}
	forest := abstree.MustForest(plansTree)
	B := set.Size() / 2
	online, err := sampling.OnlineCompress(set, forest, B, sampling.Options{Fraction: 1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	offline, err := core.GreedyVVS(set, forest, B)
	if err != nil {
		t.Fatal(err)
	}
	if online.Abstracted.Size() != set.Size()-offline.ML {
		t.Errorf("fraction-1 online size %d != offline size %d",
			online.Abstracted.Size(), set.Size()-offline.ML)
	}
	if online.Abstracted.Granularity() != set.Granularity()-offline.VL {
		t.Errorf("fraction-1 online granularity %d != offline %d",
			online.Abstracted.Granularity(), set.Granularity()-offline.VL)
	}
}

// TestPipelineQ10ManySmallPolynomials verifies the paper's Q10 narrative at
// the system level: lots of polynomials, tiny each, little to gain — the
// optimal abstraction's ML stays far from a 50% cut.
func TestPipelineQ10Narrative(t *testing.T) {
	d, err := tpch.Generate(tpch.Config{ScaleFactor: 0.002, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	set, err := d.Provenance(tpch.Q10)
	if err != nil {
		t.Fatal(err)
	}
	if set.MeanPolySize() > 20 {
		t.Fatalf("Q10 mean polynomial size %v; narrative needs tiny polynomials", set.MeanPolySize())
	}
	tree, err := tpch.SupplierTree(treegen.SmallestOfType(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.OptimalVVS(set, tree, set.Size()/2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Adequate {
		t.Log("note: Q10 reached the 0.5 bound at this scale; paper reports ~0.03% max compression at 10GB")
	}
	// Whatever was achieved must be consistent.
	if got := core.MonomialLoss(set, res.VVS); got != res.ML {
		t.Errorf("ML mismatch: %d vs %d", got, res.ML)
	}
}
