// Package provabs is a library for hypothetical reasoning over data
// provenance with provenance abstraction, reproducing Deutch, Moskovitch
// and Rinetzky, "Hypothetical Reasoning via Provenance Abstraction"
// (SIGMOD 2019).
//
// The workflow mirrors the paper:
//
//  1. Obtain provenance polynomials — either from the built-in
//     provenance-aware SQL engine (see internal/engine and the generators
//     in internal/telco and internal/tpch), by parsing the text format, or
//     by constructing them directly.
//  2. Define abstraction trees over the provenance variables: hierarchies
//     of meta-variables describing which variables may be grouped for the
//     anticipated hypothetical scenarios.
//  3. Compress: pick a valid variable set (a cut in each tree) with
//     Optimal (single tree, exact, PTIME — the paper's Algorithm 1),
//     Greedy (any forest — Algorithm 2), or BruteForce (reference).
//  4. Ask what-ifs: scenarios valuate (meta-)variables; on abstracted
//     provenance, group-uniform scenarios are exact and the rest are
//     approximated.
//
// # The session Engine
//
// The paper's workload is a long-lived session: compress once, then answer
// a stream of hypothetical scenarios. The Engine owns that lifecycle — the
// provenance, the abstraction forest, the chosen compression, and a lazily
// built compiled form that is cached across evaluations and invalidated on
// mutation. A minimal round trip:
//
//	vb := provabs.NewVocab()
//	set := provabs.NewSet(vb)
//	set.Add("zip 10001", provabs.MustParse(vb, "220.8·p1·m1 + 240·p1·m3"))
//	forest, _ := provabs.NewForest(provabs.MustParseTree("Year(q1(m1,m3))"))
//	eng, _ := provabs.Open(set, forest)
//	comp, _ := eng.Compress(1) // StrategyAuto: optimal for one tree
//	answers, _ := eng.WhatIf(provabs.NewScenario().Set("q1", 0.8))
//	_ = comp.Abstracted // the compressed provenance, if needed directly
//
// Engine.Compress unifies the five selection strategies — Optimal
// (Algorithm 1), Greedy (Algorithm 2), BruteForce, Summarize (the Ainy et
// al. competitor) and Online (§6 sampling) — behind one call:
//
//	eng.Compress(B, provabs.WithStrategy(provabs.StrategyOnline),
//	    provabs.WithSamplingFraction(0.25), provabs.WithSeed(7))
//
// Engine.WhatIfBatch evaluates many scenarios in parallel against one
// cached compilation, and Engine.Stream answers scenarios as they arrive
// on a channel.
//
// # Multi-session registry and the v1 server
//
// One process can host many named sessions — several provenance files or
// tenants, each with its own abstraction, cached compilation and counters —
// through a Registry:
//
//	reg := provabs.OpenRegistry()
//	telco, _ := reg.Create("telco", telcoSet, telcoForest) // first = default
//	q5, _ := reg.Create("q5", q5Set, q5Forest)
//	telco.Engine().Compress(5000)
//	answers, _ := q5.Engine().WhatIf(scenario)
//	agg := reg.Stats() // aggregate counters across every session
//	reg.Close("q5")    // tears down the session's live scenario streams
//
// `provabs serve` (see internal/server) exposes the registry as a
// versioned, resource-oriented HTTP API mounted at /v1: POST/GET
// /v1/sessions, GET|DELETE /v1/sessions/{name}, POST
// /v1/sessions/{name}/whatif (+ a streaming NDJSON /whatif/stream), POST
// /v1/sessions/{name}/compress, GET /v1/sessions/{name}/stats and the
// aggregated GET /v1/stats. The pre-registry unversioned routes remain as
// deprecated aliases onto the default session.
//
// The free functions Optimal, Greedy, BruteForce, Summarize and
// OnlineCompress predate the Engine and remain as thin deprecated wrappers
// over it.
//
// # Compiled batch evaluation
//
// Under the Engine sits the compiled evaluation layer, usable directly:
// compile the (abstracted) set once with Compile — flattening every
// monomial into dense coefficient/variable arrays — and evaluate batches of
// scenarios in parallel:
//
//	compiled := provabs.Compile(compressed)
//	scenarios := []*provabs.Scenario{ ... many what-ifs ... }
//	rows, _ := provabs.EvalBatch(compiled, scenarios, 0) // 0 = GOMAXPROCS workers
//
// Compiled evaluation needs no string parsing or map lookups per monomial
// and is deterministic (canonical monomial order); EvalBatch spreads
// scenarios over a worker pool.
//
// # Delta evaluation and sharding
//
// The compiled form also carries an inverted index (variable → affected
// polynomials) and the cached baseline answers under the identity
// valuation, built once on first delta use. A sparse scenario — the typical interactive what-if, touching
// a handful of variables — is then answered by recomputing only the
// affected polynomials (Compiled.EvalDelta), with results bit-identical to
// full evaluation. The delta base is chosen per scenario: the identity
// baseline, or — on chained stream micro-batches — the previous scenario's
// answers, when consecutive valuations differ on fewer terms than either
// differs from the identity (DeltaEval.EvalFrom). Routing between the
// delta and full paths is adaptive by default: an online cost model learns
// the observed ns/term of each path and picks per scenario
// (BatchOptions.DeltaCutoff pins a static fraction instead). When a batch
// has fewer scenarios than workers the pool shards each scenario's
// polynomial range (Compiled.EvalSharded), so one huge scenario uses every
// core. The Engine applies all of this transparently (see WithDeltaCutoff)
// and reports DeltaEvals/ChainedEvals/FullEvals/ShardedEvals plus the
// learned cutoff in its Stats. Engine.Add extends the compiled form, its
// indexes and its baseline in place (Compiled.Append), so an Add-heavy
// session never recompiles.
//
// # Semiring-generic evaluation
//
// The compiled kernel is generic over the provenance semiring: the same
// flattening, inverted index, delta routing and chained streaming run on
// any commutative semiring carrier, with the float64 path bit-identical to
// the pre-generic kernel. Every evaluation entry point has an -In variant
// taking a SemiringKind:
//
//	alive, _ := eng.WhatIfIn(provabs.SemiringBool, provabs.NewScenario().Set("q1", 0))
//	counts, _ := eng.WhatIfBatchIn(provabs.SemiringCount, scenarios)
//	results := eng.StreamIn(ctx, provabs.SemiringTropical, in)
//
// Boolean answers deletion propagation (does the tuple survive?), counting
// reports derivation multiplicities, tropical the cheapest derivation and
// minmax the best worst-case clearance; answers carry the carrier's own
// value type (ValueAnswer). Non-numeric carriers read the provenance
// strictly as N[X] — fractional coefficients are rejected, near-integer
// ones (within 1e-9, summarize's float accumulation) are accepted. Each
// carrier compiles once per session and caches independently, and Stats
// breaks scenario and delta counters out per semiring.
package provabs

import (
	"io"
	"time"

	"provabs/internal/abstree"
	"provabs/internal/core"
	"provabs/internal/hypo"
	"provabs/internal/provenance"
	"provabs/internal/registry"
	"provabs/internal/sampling"
	"provabs/internal/scenql"
	"provabs/internal/semiring"
	"provabs/internal/session"
	"provabs/internal/summarize"
)

// Provenance model (internal/provenance).
type (
	// Var is an interned provenance variable.
	Var = provenance.Var
	// Vocab interns variable names.
	Vocab = provenance.Vocab
	// Monomial is a coefficient times a product of variables.
	Monomial = provenance.Monomial
	// Polynomial is a canonical sum of monomials.
	Polynomial = provenance.Polynomial
	// Set is a multiset of tagged polynomials — a query's provenance.
	Set = provenance.Set
	// Compiled is a set flattened into dense arrays for fast, repeated,
	// parallel scenario evaluation, with an inverted variable index and a
	// cached baseline for delta evaluation.
	Compiled = provenance.Compiled
	// DeltaEval is reusable scratch for repeated delta evaluation against
	// one Compiled (Compiled.NewDeltaEval).
	DeltaEval = provenance.DeltaEval
)

// Abstraction model (internal/abstree).
type (
	// Tree is an abstraction tree: leaves are provenance variables,
	// internal nodes are meta-variables.
	Tree = abstree.Tree
	// Spec declaratively describes a Tree.
	Spec = abstree.Spec
	// Forest is a set of label-disjoint abstraction trees.
	Forest = abstree.Forest
	// VVS is a valid variable set: a cut per tree, i.e. one abstraction.
	VVS = abstree.VVS
)

// Algorithms (internal/core).
type (
	// Result is a VVS-selection outcome: the chosen abstraction, its
	// monomial and variable losses, and whether it meets the bound.
	Result = core.Result
	// Compression is the uniform outcome of any compression strategy run
	// through the Engine: abstracted set, substitution, losses, adequacy.
	Compression = core.Compression
	// Compressor is the strategy interface all five compression algorithms
	// implement.
	Compressor = core.Compressor
)

// Session engine (internal/session).
type (
	// Engine is a long-lived hypothetical-reasoning session: it owns the
	// provenance, the abstraction, and a mutation-invalidated compiled
	// cache, and answers scenario streams without re-compiling.
	Engine = session.Engine
	// EngineStats is a point-in-time snapshot of an Engine.
	EngineStats = session.Stats
	// StreamResult is one streamed what-if outcome of Engine.Stream.
	StreamResult = session.StreamResult
	// ValueStreamResult is one streamed outcome of Engine.StreamIn, with
	// the answers carrier-erased (Value holds the semiring's own type).
	ValueStreamResult = session.ValueStreamResult
	// Strategy names a compression algorithm for WithStrategy.
	Strategy = session.Strategy
	// Option configures an Engine at Open time.
	Option = session.Option
	// CompressOption tunes a single Engine.Compress call.
	CompressOption = session.CompressOption
)

// ScenQL (internal/scenql): a scenario query language over a session —
// grid sweeps, cross products and samples compiled into a lazily iterated
// plan and evaluated through the chained delta kernel, with streaming
// top-k and an EXPLAIN that reports routes and live cost estimates:
//
//	res, _ := eng.Query("price IN [0.5:1.5:0.01] ORDER BY ans[0] DESC LIMIT 10")
//	info, rows, _ := eng.QueryStream(ctx, "SAMPLE 100000 a, b IN [0:1] SEED 7")
type (
	// QueryResult is a non-streaming Engine.Query outcome.
	QueryResult = session.QueryResult
	// QueryRow is one scenario's outcome within a query.
	QueryRow = session.QueryRow
	// QueryInfo is the statement-level header of Engine.QueryStream.
	QueryInfo = session.QueryInfo
	// QueryParseError is a positioned ScenQL syntax error.
	QueryParseError = scenql.ParseError
	// QueryCompileError is a positioned ScenQL resolution error (an unknown
	// variable, an unsatisfiable ORDER BY, …).
	QueryCompileError = scenql.CompileError
)

// ParseScenarioLiteral parses one "x=0.5, y=1" scenario literal — the
// syntax shared by the CLI's -set/-sets flags, ScenQL's SET clause, and
// the server's bare stream lines.
func ParseScenarioLiteral(spec string) (*Scenario, error) { return scenql.ParseAssignments(spec) }

// ParseScenarioLiterals parses a ";"-separated list of scenario literals.
func ParseScenarioLiterals(spec string) ([]*Scenario, error) { return scenql.ParseScenarios(spec) }

// Compression strategies for Engine.Compress.
const (
	// StrategyAuto picks Optimal for a single tree, Greedy otherwise.
	StrategyAuto = session.StrategyAuto
	// StrategyOptimal is Algorithm 1 (exact, PTIME, single tree).
	StrategyOptimal = session.StrategyOptimal
	// StrategyGreedy is Algorithm 2 (heuristic, any forest).
	StrategyGreedy = session.StrategyGreedy
	// StrategyBruteForce is the exhaustive reference solver.
	StrategyBruteForce = session.StrategyBruteForce
	// StrategySummarize is the Ainy et al. (CIKM'15) competitor.
	StrategySummarize = session.StrategySummarize
	// StrategyOnline is the §6 sample-then-apply pipeline.
	StrategyOnline = session.StrategyOnline
)

// Semiring selection (internal/semiring): every evaluation entry point has
// an -In variant (Engine.WhatIfIn, Engine.WhatIfBatchIn, Engine.StreamIn)
// that runs the same compiled kernel on the named carrier.
type (
	// SemiringKind names a wire-selectable evaluation carrier.
	SemiringKind = semiring.Kind
	// ValueAnswer is a tagged answer in the carrier's own value type
	// (float64, bool, int64), carrier-erased into an any.
	ValueAnswer = hypo.ValueAnswer
)

const (
	// SemiringFloat is the numeric semiring — the default float64 path.
	SemiringFloat = semiring.KindFloat
	// SemiringBool is the boolean semiring: deletion propagation, answers
	// report whether the tuple survives.
	SemiringBool = semiring.KindBool
	// SemiringCount is the counting semiring: derivation counts under
	// integer multiplicities.
	SemiringCount = semiring.KindCount
	// SemiringTropical is the min-plus semiring: cheapest derivation cost.
	SemiringTropical = semiring.KindTropical
	// SemiringMinMax is the max-min semiring: best worst-case clearance.
	SemiringMinMax = semiring.KindMinMax
)

// ParseSemiring resolves a carrier name ("" = float) for the -In entry
// points; unknown names list the valid set.
func ParseSemiring(name string) (SemiringKind, error) { return semiring.ParseKind(name) }

// Semirings lists every wire-selectable carrier, float first.
func Semirings() []SemiringKind { return semiring.Kinds() }

// Multi-session registry (internal/registry).
type (
	// Registry owns many named session Engines in one process — one per
	// provenance set / tenant — with a full lifecycle and aggregate stats.
	Registry = registry.Registry
	// RegistrySession is one named session: an Engine plus its registry
	// lifecycle (Name, Created, Done on close).
	RegistrySession = registry.Session
	// AggregateStats is the registry-wide stats view: per-session snapshots
	// plus cross-session totals.
	AggregateStats = registry.AggregateStats
)

// Registry lookup errors, matched with errors.Is.
var (
	// ErrSessionExists reports a Create against a name already in use.
	ErrSessionExists = registry.ErrExists
	// ErrSessionNotFound reports a lookup of an unknown session name.
	ErrSessionNotFound = registry.ErrNotFound
	// ErrNoDefaultSession reports that no default session is designated.
	ErrNoDefaultSession = registry.ErrNoDefault
)

// Open starts a session Engine over the set. forest may be nil for an
// evaluation-only session; otherwise it is validated against the set.
func Open(set *Set, forest *Forest, opts ...Option) (*Engine, error) {
	return session.Open(set, forest, opts...)
}

// OpenRegistry returns an empty multi-session registry. Create named
// sessions on it (the first becomes the default) and serve it with
// internal/server or use it directly.
func OpenRegistry() *Registry { return registry.New() }

// ParseStrategy resolves a strategy name ("optimal", "greedy", "brute",
// "summarize", "online" and their aliases).
func ParseStrategy(name string) (Strategy, error) { return session.ParseStrategy(name) }

// WithWorkers sets an Engine's worker-pool size (0 = GOMAXPROCS). With
// fewer scenarios than workers the pool shards each scenario's polynomial
// range instead of idling.
func WithWorkers(n int) Option { return session.WithWorkers(n) }

// WithDeltaCutoff sets the affected-term density below which an Engine
// delta-evaluates scenarios (0 = adaptive, learned from observed per-path
// timings; >0 = static fraction; negative disables the delta path).
func WithDeltaCutoff(f float64) Option { return session.WithDeltaCutoff(f) }

// WithStreamBuffer sets the capacity of Engine.Stream's output channel so a
// slow consumer does not serialize evaluation (0 = the micro-batch size,
// negative = unbuffered).
func WithStreamBuffer(n int) Option { return session.WithStreamBuffer(n) }

// WithStreamBatch caps how many pending scenarios Engine.Stream drains into
// one micro-batched evaluation (0 = the default, 64).
func WithStreamBatch(n int) Option { return session.WithStreamBatch(n) }

// WithStrategy selects the compression algorithm for Engine.Compress.
func WithStrategy(s Strategy) CompressOption { return session.WithStrategy(s) }

// WithSamplingFraction sets the online strategy's sample fraction.
func WithSamplingFraction(f float64) CompressOption { return session.WithSamplingFraction(f) }

// WithSeed sets the online strategy's sampling seed.
func WithSeed(seed int64) CompressOption { return session.WithSeed(seed) }

// WithTimeout bounds the summarize strategy's runtime (0 = unlimited).
func WithTimeout(d time.Duration) CompressOption { return session.WithTimeout(d) }

// WithBruteLimit caps the brute-force strategy's VVS enumeration.
func WithBruteLimit(n int) CompressOption { return session.WithBruteLimit(n) }

// Hypothetical reasoning (internal/hypo).
type (
	// Scenario assigns hypothetical values to variables by name.
	Scenario = hypo.Scenario
	// Answer pairs a polynomial tag with its value under a scenario.
	Answer = hypo.Answer
	// BatchOptions tunes EvalBatchOpts: worker-pool size, delta-vs-full
	// density cutoff (static, or the adaptive cost model), chained
	// evaluation, and optional evaluation counters.
	BatchOptions = hypo.BatchOptions
	// BatchCounters accumulates delta/chained/full/sharded evaluation
	// counts and carries the adaptive cost model's learned per-term
	// timings (DeltaNsPerTerm/FullNsPerTerm/AdaptiveCutoff).
	BatchCounters = hypo.BatchCounters
)

// DefaultDeltaCutoff is the affected-term density above which scenarios are
// evaluated in full rather than via the delta path while the adaptive cost
// model has no observations (and the static fallback fraction).
const DefaultDeltaCutoff = hypo.DefaultDeltaCutoff

// NewVocab returns an empty variable vocabulary.
func NewVocab() *Vocab { return provenance.NewVocab() }

// NewSet returns an empty provenance set over vb (a fresh vocabulary when
// nil).
func NewSet(vb *Vocab) *Set { return provenance.NewSet(vb) }

// Parse parses a polynomial in the paper's notation, e.g.
// "220.8·p1·m1 + 240*p1*m3", interning variables into vb.
func Parse(vb *Vocab, src string) (*Polynomial, error) { return provenance.Parse(vb, src) }

// MustParse is Parse that panics on error.
func MustParse(vb *Vocab, src string) *Polynomial { return provenance.MustParse(vb, src) }

// NewTree builds an abstraction tree from a Spec.
func NewTree(spec Spec) (*Tree, error) { return abstree.NewTree(spec) }

// ParseTree parses the compact tree format, e.g. "Year(q1(m1,m2,m3))".
func ParseTree(src string) (*Tree, error) { return abstree.ParseTree(src) }

// MustParseTree is ParseTree that panics on error.
func MustParseTree(src string) *Tree { return abstree.MustParseTree(src) }

// NewForest validates that the trees are label-disjoint and combines them.
func NewForest(trees ...*Tree) (*Forest, error) { return abstree.NewForest(trees...) }

// FromLabels builds and validates a VVS from chosen node labels.
func FromLabels(f *Forest, labels ...string) (*VVS, error) {
	return abstree.FromLabels(f, labels...)
}

// engineCompress runs one compression through a throwaway Engine — the
// shared body of the deprecated free functions.
func engineCompress(s *Set, forest *Forest, B int, opts ...CompressOption) (*Compression, error) {
	e, err := Open(s, forest)
	if err != nil {
		return nil, err
	}
	return e.Compress(B, opts...)
}

// resultOf converts a Compression back to the legacy Result shape.
func resultOf(c *Compression) *Result {
	return &Result{VVS: c.VVS, ML: c.ML, VL: c.VL, Adequate: c.Adequate}
}

// Optimal selects an optimal abstraction for a single tree and bound B on
// the number of monomials — the paper's Algorithm 1 (exact, PTIME).
//
// Deprecated: use Open and Engine.Compress(B, WithStrategy(StrategyOptimal)),
// which additionally caches the compiled form for scenario evaluation.
func Optimal(s *Set, tree *Tree, B int) (*Result, error) {
	forest, err := NewForest(tree)
	if err != nil {
		return nil, err
	}
	c, err := engineCompress(s, forest, B, WithStrategy(StrategyOptimal))
	if err != nil {
		return nil, err
	}
	return resultOf(c), nil
}

// Greedy selects an abstraction for an arbitrary forest — the paper's
// Algorithm 2 (heuristic; the multi-tree problem is NP-hard).
//
// Deprecated: use Open and Engine.Compress(B, WithStrategy(StrategyGreedy)).
func Greedy(s *Set, forest *Forest, B int) (*Result, error) {
	c, err := engineCompress(s, forest, B, WithStrategy(StrategyGreedy))
	if err != nil {
		return nil, err
	}
	return resultOf(c), nil
}

// BruteForce exhaustively selects an optimal abstraction (reference
// implementation; fails beyond limit enumerated VVS, 0 = default).
//
// Deprecated: use Open and Engine.Compress(B,
// WithStrategy(StrategyBruteForce), WithBruteLimit(limit)).
func BruteForce(s *Set, forest *Forest, B, limit int) (*Result, error) {
	c, err := engineCompress(s, forest, B, WithStrategy(StrategyBruteForce), WithBruteLimit(limit))
	if err != nil {
		return nil, err
	}
	return resultOf(c), nil
}

// Summarize runs the pairwise-merge summarization of Ainy et al. (CIKM'15),
// the paper's experimental competitor, with an optional timeout.
//
// Deprecated: use Open and Engine.Compress(B,
// WithStrategy(StrategySummarize), WithTimeout(timeout)).
func Summarize(s *Set, forest *Forest, B int, timeout time.Duration) (*summarize.Result, error) {
	c, err := engineCompress(s, forest, B, WithStrategy(StrategySummarize), WithTimeout(timeout))
	if err != nil {
		return nil, err
	}
	return c.Extra.(*summarize.Result), nil
}

// OnlineCompress runs the §6 online pipeline: choose a VVS on a sampled
// fraction of the polynomials and abstract the full set with it.
//
// Deprecated: use Open and Engine.Compress(B, WithStrategy(StrategyOnline),
// WithSamplingFraction(fraction), WithSeed(seed)).
func OnlineCompress(s *Set, forest *Forest, B int, fraction float64, seed int64) (*sampling.Result, error) {
	c, err := engineCompress(s, forest, B, WithStrategy(StrategyOnline),
		WithSamplingFraction(fraction), WithSeed(seed))
	if err != nil {
		return nil, err
	}
	return c.Extra.(*sampling.Result), nil
}

// MonomialLoss returns ML(S) = |P|_M − |P↓S|_M.
func MonomialLoss(s *Set, v *VVS) int { return core.MonomialLoss(s, v) }

// VariableLoss returns VL(S) = |P|_V − |P↓S|_V.
func VariableLoss(s *Set, v *VVS) int { return core.VariableLoss(s, v) }

// NewScenario returns an empty hypothetical scenario.
func NewScenario() *Scenario { return hypo.NewScenario() }

// Compile flattens a provenance set for fast repeated evaluation. Compile
// once, then evaluate many scenarios with EvalBatch or Scenario.EvalCompiled.
func Compile(s *Set) *Compiled { return s.Compile() }

// EvalBatch evaluates many scenarios against compiled provenance on a
// worker pool of the given size (0 = GOMAXPROCS), returning one answer
// vector per scenario in scenario order. Sparse scenarios automatically
// take the delta path; use EvalBatchOpts to tune or disable the routing.
func EvalBatch(c *Compiled, scenarios []*Scenario, workers int) ([][]float64, error) {
	return hypo.EvalBatch(c, scenarios, hypo.BatchOptions{Workers: workers})
}

// EvalBatchOpts is EvalBatch with full control over the routing: worker
// count, delta cutoff, and evaluation counters.
func EvalBatchOpts(c *Compiled, scenarios []*Scenario, opts BatchOptions) ([][]float64, error) {
	return hypo.EvalBatch(c, scenarios, opts)
}

// AnswersBatch is EvalBatch with each value paired to its polynomial's tag.
func AnswersBatch(c *Compiled, scenarios []*Scenario, workers int) ([][]Answer, error) {
	return hypo.AnswersBatch(c, scenarios, hypo.BatchOptions{Workers: workers})
}

// Encode writes a provenance set in the compact binary format.
func Encode(w io.Writer, s *Set) error { return provenance.Encode(w, s) }

// Decode reads a provenance set written by Encode.
func Decode(r io.Reader) (*Set, error) { return provenance.Decode(r) }

// EncodedSize returns the byte size Encode would produce — the
// storage/communication cost of shipping the provenance to analysts.
func EncodedSize(s *Set) int { return provenance.EncodedSize(s) }
