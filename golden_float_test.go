package provabs

// Bit-identity pin for the float64 evaluation path. The hashes below were
// recorded from the pre-generic kernel (PR 5 state): every Eval, EvalDelta,
// EvalFrom and post-Append output on the telco and Q5 workloads is hashed
// bit-for-bit (math.Float64bits, big-endian) and compared against the
// recorded digest. The semiring-generic refactor must keep the float64
// carrier's results byte-identical — any change to summation order,
// factor association, or coefficient handling on the float path trips this
// test. Runs under -short, so `make check` gates it.

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"testing"

	"provabs/internal/provenance"
	"provabs/internal/telco"
	"provabs/internal/tpch"
)

// goldenFloatDigests maps workload name to the recorded digest of the full
// evaluation transcript (see goldenTranscript).
var goldenFloatDigests = map[string]string{
	"telco": "fb2a1c0a6417ba67ad053fa48b8c59facf25fe625d13a0ca9ec3ca4030856e70",
	"Q5":    "b071593231a1d1ae44df0168dd74ad1cf7ccd89f02cb0cfc87827bccc5e39d64",
}

func goldenSet(t *testing.T, name string) *provenance.Set {
	t.Helper()
	switch name {
	case "telco":
		s, err := telco.SyntheticProvenance(telco.Config{
			Customers: 200, Plans: 128, Months: 12, Zips: 20, Seed: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	case "Q5":
		d, err := tpch.Generate(tpch.Config{ScaleFactor: 0.002, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		s, err := d.Provenance("Q5")
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	t.Fatalf("unknown golden workload %q", name)
	return nil
}

// goldenTranscript drives the compiled float kernel through every evaluation
// entry point in a deterministic order, folding each answer vector into the
// hash bit-for-bit.
func goldenTranscript(t *testing.T, set *provenance.Set) string {
	t.Helper()
	h := sha256.New()
	fold := func(vals []float64) {
		var buf [8]byte
		for _, v := range vals {
			binary.BigEndian.PutUint64(buf[:], math.Float64bits(v))
			h.Write(buf[:])
		}
	}

	c := set.Compiled()
	vars := set.Vars()

	// A deterministic non-identity valuation over every variable.
	val := c.NewValuation()
	for i, v := range vars {
		val[v] = 0.5 + float64(i%7)/8
	}
	fold(c.Eval(val, nil))

	// Sparse delta: a handful of touched variables off the identity.
	dval := c.NewValuation()
	touched := make([]provenance.Var, 0, 5)
	for i := 0; i < len(vars) && len(touched) < 5; i += 3 {
		dval[vars[i]] = 0.25 + float64(i%5)/4
		touched = append(touched, vars[i])
	}
	prev := c.EvalDelta(touched, dval, nil)
	fold(prev)

	// Chained delta: change one of the touched variables and EvalFrom the
	// previous answers.
	d := c.NewDeltaEval()
	dval[touched[0]] = 1.75
	fold(d.EvalFrom(touched[:1], dval, prev, nil))

	// Append two polynomials over existing variables, then re-evaluate on
	// both the full and the delta path.
	for i := 0; i < 2; i++ {
		p := provenance.NewPolynomial()
		p.AddTerm(1.5+float64(i), vars[0])
		p.AddTerm(2.25, vars[0], vars[1%len(vars)])
		set.Add(fmt.Sprintf("golden-added-%d", i), p)
	}
	c = set.Compiled()
	fold(c.Eval(val[:c.ValuationLen()], nil))
	fold(c.EvalDelta(touched, dval[:c.ValuationLen()], nil))

	return hex.EncodeToString(h.Sum(nil))
}

func TestGoldenFloatBitIdentity(t *testing.T) {
	for name, want := range goldenFloatDigests {
		t.Run(name, func(t *testing.T) {
			got := goldenTranscript(t, goldenSet(t, name))
			if want == "" {
				t.Fatalf("record this digest: %q", got)
			}
			if got != want {
				t.Errorf("float path output changed: digest %s, want %s", got, want)
			}
		})
	}
}
