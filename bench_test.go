// Benchmarks regenerating every table and figure of the paper's evaluation
// (§4.3, Appendix B) at CI scale. Each BenchmarkFigN/BenchmarkTableN target
// measures the operations the corresponding plot times; the full sweeps
// with the paper's row/series layout are produced by cmd/provbench.
package provabs_test

import (
	"sync"
	"testing"
	"time"

	"provabs/internal/abstree"
	"provabs/internal/bench"
	"provabs/internal/core"
	"provabs/internal/hypo"
	"provabs/internal/provenance"
	"provabs/internal/sampling"
	"provabs/internal/summarize"
	"provabs/internal/tpch"
	"provabs/internal/treegen"
)

var (
	loadOnce  sync.Once
	workloads map[string]*bench.Workload
	loadErr   error
)

func load(b *testing.B, name string) *bench.Workload {
	b.Helper()
	loadOnce.Do(func() {
		ws, err := bench.LoadWorkloads(bench.DefaultScale())
		if err != nil {
			loadErr = err
			return
		}
		workloads = map[string]*bench.Workload{}
		for _, w := range ws {
			workloads[w.Name] = w
		}
	})
	if loadErr != nil {
		b.Fatal(loadErr)
	}
	w, ok := workloads[name]
	if !ok {
		b.Fatalf("no workload %q", name)
	}
	return w
}

func benchOpt(b *testing.B, w *bench.Workload, shape treegen.Shape) {
	b.Helper()
	tree := w.Tree(shape)
	B := w.Set.Size() / 2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.OptimalVVS(w.Set, tree, B); err != nil {
			b.Fatal(err)
		}
	}
}

func benchGreedy(b *testing.B, w *bench.Workload, shape treegen.Shape) {
	b.Helper()
	forest := w.Forest(shape)
	B := w.Set.Size() / 2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.GreedyVVS(w.Set, forest, B); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5 times Opt, Greedy and Brute-Force on 2-level (type 1)
// trees for all four workloads — the quantities on Figure 5's y-axes.
func BenchmarkFig5(b *testing.B) {
	shape := treegen.SmallestOfType(1)
	for _, name := range []string{"Q5", "Q10", "Q1", "telco"} {
		w := load(b, name)
		b.Run(name+"/opt", func(b *testing.B) { benchOpt(b, w, shape) })
		b.Run(name+"/greedy", func(b *testing.B) { benchGreedy(b, w, shape) })
		b.Run(name+"/brute", func(b *testing.B) {
			forest := w.Forest(shape)
			B := w.Set.Size() / 2
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, err := core.BruteForceVVS(w.Set, forest, B, bench.BruteLimit)
				if err != nil && err != core.ErrNoAdequate {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig6 times Opt and Greedy on 3-level trees (types 2–4), Q5.
func BenchmarkFig6(b *testing.B) {
	w := load(b, "Q5")
	for _, typ := range []int{2, 3, 4} {
		shape := treegen.SmallestOfType(typ)
		b.Run("type"+itoa(typ)+"/opt", func(b *testing.B) { benchOpt(b, w, shape) })
		b.Run("type"+itoa(typ)+"/greedy", func(b *testing.B) { benchGreedy(b, w, shape) })
	}
}

// BenchmarkFig7 times Opt and Greedy on 4-level trees (types 5–7), Q5.
func BenchmarkFig7(b *testing.B) {
	w := load(b, "Q5")
	for _, typ := range []int{5, 6, 7} {
		shape := treegen.SmallestOfType(typ)
		b.Run("type"+itoa(typ)+"/opt", func(b *testing.B) { benchOpt(b, w, shape) })
		b.Run("type"+itoa(typ)+"/greedy", func(b *testing.B) { benchGreedy(b, w, shape) })
	}
}

// BenchmarkFig8 times compression across growing input data sizes (telco).
func BenchmarkFig8(b *testing.B) {
	shape := treegen.SmallestOfType(1)
	sc := bench.DefaultScale()
	for _, mult := range []int{1, 2, 4} {
		w, err := bench.LoadWorkload("telco", bench.Scale{
			TPCHScaleFactor: sc.TPCHScaleFactor,
			TelcoCustomers:  sc.TelcoCustomers * mult,
			TelcoZips:       sc.TelcoZips,
			Seed:            sc.Seed,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.Run("x"+itoa(mult)+"/opt", func(b *testing.B) { benchOpt(b, w, shape) })
	}
}

// BenchmarkFig9 times Opt and Greedy at tight and loose bounds — the
// paper's finding is that only the greedy's time depends on the bound.
func BenchmarkFig9(b *testing.B) {
	w := load(b, "Q5")
	shape := treegen.SmallestOfType(1)
	tree := w.Tree(shape)
	forest := w.Forest(shape)
	bounds := bench.BoundSweep(w, shape, 3)
	for i, B := range bounds {
		B := B
		tag := []string{"tight", "mid", "loose"}[i%3]
		b.Run("opt/"+tag, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.OptimalVVS(w.Set, tree, B); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("greedy/"+tag, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.GreedyVVS(w.Set, forest, B); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig10 times scenario assignment on original vs compressed
// provenance — the source of Figure 10's speedup percentages.
func BenchmarkFig10(b *testing.B) {
	for _, name := range []string{"Q5", "Q10", "Q1", "telco"} {
		w := load(b, name)
		res, err := core.OptimalVVS(w.Set, w.Tree(treegen.SmallestOfType(1)), w.Set.Size()/2)
		if err != nil {
			b.Fatal(err)
		}
		abs := res.VVS.Apply(w.Set)
		val := func(s *provenance.Set) map[provenance.Var]float64 {
			m := map[provenance.Var]float64{}
			for i, v := range s.Vars() {
				m[v] = 0.5 + float64(i%7)/8
			}
			return m
		}
		vo, va := val(w.Set), val(abs)
		b.Run(name+"/original", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w.Set.Eval(vo)
			}
		})
		b.Run(name+"/compressed", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				abs.Eval(va)
			}
		})
	}
}

// BenchmarkCompiledEval compares the map-based Set.Eval hot path against
// the compiled dense-array path on the telco and TPC-H workloads, single
// scenario and 100-scenario batch (sequential and parallel). The compiled
// batch is the production what-if path; the acceptance target is ≥2× over
// map-based evaluation on 100 telco scenarios.
func BenchmarkCompiledEval(b *testing.B) {
	const nScenarios = 100
	for _, name := range []string{"telco", "Q5", "Q1"} {
		w := load(b, name)
		compiled := w.Set.Compile()
		val := map[provenance.Var]float64{}
		for i, v := range w.Set.Vars() {
			val[v] = 0.5 + float64(i%7)/8
		}
		dense := compiled.Valuation(val)
		scenarios := make([]*hypo.Scenario, nScenarios)
		for i := range scenarios {
			sc := hypo.NewScenario()
			for j, v := range w.Set.Vars() {
				sc.Set(w.Set.Vocab.Name(v), 0.5+float64((i+j)%9)/8)
			}
			scenarios[i] = sc
		}
		b.Run(name+"/map", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w.Set.Eval(val)
			}
		})
		b.Run(name+"/compiled", func(b *testing.B) {
			var out []float64
			for i := 0; i < b.N; i++ {
				out = compiled.Eval(dense, out)
			}
		})
		b.Run(name+"/map-batch100", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for range scenarios {
					w.Set.Eval(val)
				}
			}
		})
		b.Run(name+"/compiled-batch100-serial", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := hypo.EvalBatch(compiled, scenarios, hypo.BatchOptions{Workers: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(name+"/compiled-batch100-parallel", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := hypo.EvalBatch(compiled, scenarios, hypo.BatchOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDeltaEval compares full compiled evaluation against the
// delta-aware path on sparse scenarios (1 and 4 touched variables) for the
// telco and TPC-H workloads. The acceptance target is ≥5× on the
// one-variable what-if; cmd/provbench -experiment delta records the same
// quantities in BENCH_3.json at a sparser scale.
func BenchmarkDeltaEval(b *testing.B) {
	for _, name := range []string{"telco", "Q5"} {
		w := load(b, name)
		compiled := w.Set.Compile()
		compiled.Baseline() // steady state: baseline cached before timing
		var touched []provenance.Var
		for i := 0; len(touched) < 4 && i < 128; i++ {
			if v, ok := w.Set.Vocab.Lookup(w.LeafPrefix + itoa(i)); ok {
				touched = append(touched, v)
			}
		}
		if len(touched) < 4 {
			b.Fatalf("%s: fewer than 4 leaf variables", name)
		}
		valFor := func(k int) []float64 {
			val := compiled.NewValuation()
			for _, v := range touched[:k] {
				val[v] = 0.8
			}
			return val
		}
		b.Run(name+"/full", func(b *testing.B) {
			val := valFor(1)
			var out []float64
			for i := 0; i < b.N; i++ {
				out = compiled.Eval(val, out)
			}
		})
		delta := compiled.NewDeltaEval()
		for _, k := range []int{1, 4} {
			b.Run(name+"/delta-touch"+itoa(k), func(b *testing.B) {
				val := valFor(k)
				var out []float64
				for i := 0; i < b.N; i++ {
					out = delta.Eval(touched[:k], val, out)
				}
			})
		}
	}
}

// BenchmarkShardedScenario measures single-scenario latency as the
// polynomial range is split over 1, 2 and 4 goroutines — the
// intra-scenario sharding path that keeps a huge lone scenario off a single
// core. Scaling is near-linear on real cores and flat when GOMAXPROCS=1.
func BenchmarkShardedScenario(b *testing.B) {
	for _, name := range []string{"telco", "Q5"} {
		w := load(b, name)
		compiled := w.Set.Compile()
		val := map[provenance.Var]float64{}
		for i, v := range w.Set.Vars() {
			val[v] = 0.5 + float64(i%7)/8
		}
		dense := compiled.Valuation(val)
		for _, workers := range []int{1, 2, 4} {
			b.Run(name+"/workers"+itoa(workers), func(b *testing.B) {
				var out []float64
				for i := 0; i < b.N; i++ {
					out = compiled.EvalSharded(dense, out, workers)
				}
			})
		}
	}
}

// BenchmarkCompile isolates the one-time compilation cost that the batch
// path amortizes.
func BenchmarkCompile(b *testing.B) {
	for _, name := range []string{"telco", "Q5"} {
		w := load(b, name)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w.Set.Compile()
			}
		})
	}
}

// BenchmarkFig11 times the greedy across growing tree counts.
func BenchmarkFig11(b *testing.B) {
	w := load(b, "telco")
	B := w.Set.Size() / 2
	for _, k := range []int{2, 4, 8} {
		trees := make([]*abstree.Tree, k)
		for i := 0; i < k; i++ {
			base := i * 16
			trees[i] = treegen.BinaryTree("T"+itoa(i), 4, func(j int) string {
				return "pl" + itoa(base+j)
			})
		}
		forest, err := abstree.NewForest(trees...)
		if err != nil {
			b.Fatal(err)
		}
		b.Run("trees"+itoa(k)+"/greedy", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.GreedyVVS(w.Set, forest, B); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig12 times Opt VVS against the Ainy et al. competitor on Q1.
func BenchmarkFig12(b *testing.B) {
	w := load(b, "Q1")
	shape := treegen.SmallestOfType(1)
	tree := w.Tree(shape)
	forest := w.Forest(shape)
	B := w.Set.Size() / 2
	b.Run("opt", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.OptimalVVS(w.Set, tree, B); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("prox", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := summarize.Summarize(w.Set, forest, B, summarize.Options{Timeout: time.Minute}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig14 times Opt as the total variable count grows (Appendix B).
func BenchmarkFig14(b *testing.B) {
	sc := bench.DefaultScale()
	for _, groups := range []int{128, 1024} {
		d, err := tpch.Generate(tpch.Config{ScaleFactor: sc.TPCHScaleFactor, Seed: sc.Seed, VarGroups: groups})
		if err != nil {
			b.Fatal(err)
		}
		set, err := d.Provenance(tpch.Q1)
		if err != nil {
			b.Fatal(err)
		}
		w := &bench.Workload{Name: "Q1", Set: set, LeafPrefix: "s", LeafCount: 128}
		b.Run("vars"+itoa(groups)+"/opt", func(b *testing.B) {
			benchOpt(b, w, treegen.SmallestOfType(1))
		})
	}
}

// BenchmarkTable1 times the greedy-vs-optimal quality comparison runs.
func BenchmarkTable1(b *testing.B) {
	w := load(b, "Q5")
	for _, typ := range []int{1, 4, 7} {
		shape := treegen.SmallestOfType(typ)
		b.Run("type"+itoa(typ), func(b *testing.B) {
			tree := w.Tree(shape)
			forest := w.Forest(shape)
			B := w.Set.Size() / 2
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.OptimalVVS(w.Set, tree, B); err != nil {
					b.Fatal(err)
				}
				if _, err := core.GreedyVVS(w.Set, forest, B); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable2 times exact VVS counting over the full tree catalog.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, s := range treegen.Table2 {
			_ = s.CutCount()
		}
	}
}

// BenchmarkAblationML compares the §4.1 residue-table monomial-loss
// computation against the naive substitute-and-count method (DESIGN.md §6)
// under Algorithm 1's access pattern: the ML of every internal node of a
// type-1 tree over the 128 supplier variables (one shared residue table vs
// one substitution pass per node). A single isolated group query is also
// measured — there the naive pass wins, which is why the residue table is
// only built once per tree inside the algorithms.
func BenchmarkAblationML(b *testing.B) {
	w := load(b, "Q5")
	shape := treegen.Shape{Fanouts: []int{16, 8}}
	tree := w.Tree(shape)
	var groups [][]provenance.Var
	for n := 0; n < tree.Len(); n++ {
		if tree.IsLeaf(n) {
			continue
		}
		var g []provenance.Var
		for _, l := range tree.LeavesUnder(n) {
			if v, ok := w.Set.Vocab.Lookup(tree.Label(l)); ok {
				g = append(g, v)
			}
		}
		groups = append(groups, g)
	}
	b.Run("residue-per-tree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.BatchGroupML(w.Set, groups)
		}
	})
	b.Run("naive-per-tree", func(b *testing.B) {
		meta := w.Set.Vocab.Var("ABLATION_META")
		for i := 0; i < b.N; i++ {
			for _, g := range groups {
				core.NaiveGroupML(w.Set, g, meta)
			}
		}
	})
	b.Run("residue-single-group", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.GroupML(w.Set, groups[0])
		}
	})
	b.Run("naive-single-group", func(b *testing.B) {
		meta := w.Set.Vocab.Var("ABLATION_META2")
		for i := 0; i < b.N; i++ {
			core.NaiveGroupML(w.Set, groups[0], meta)
		}
	})
}

// BenchmarkAblationStorage reports the byte sizes of shipped provenance
// before and after abstraction — the communication-cost reading of the
// compression gain.
func BenchmarkAblationStorage(b *testing.B) {
	w := load(b, "Q5")
	res, err := core.OptimalVVS(w.Set, w.Tree(treegen.SmallestOfType(1)), w.Set.Size()/2)
	if err != nil {
		b.Fatal(err)
	}
	abs := res.VVS.Apply(w.Set)
	b.Run("encode", func(b *testing.B) {
		var orig, comp int
		for i := 0; i < b.N; i++ {
			orig = provenance.EncodedSize(w.Set)
			comp = provenance.EncodedSize(abs)
		}
		b.ReportMetric(float64(orig), "origBytes")
		b.ReportMetric(float64(comp), "compressedBytes")
	})
}

// BenchmarkAblationOnline compares offline greedy selection against the §6
// sampling pipeline.
func BenchmarkAblationOnline(b *testing.B) {
	w := load(b, "telco")
	forest := w.Forest(treegen.SmallestOfType(1))
	B := w.Set.Size() / 2
	b.Run("offline", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.GreedyVVS(w.Set, forest, B); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("online30pct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sampling.OnlineCompress(w.Set, forest, B, sampling.Options{Fraction: 0.3, Seed: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationGreedyTieBreak compares the Example 15 max-ML tie-break
// against the pseudocode's arbitrary tie-break, reporting retained
// granularity alongside time.
func BenchmarkAblationGreedyTieBreak(b *testing.B) {
	w := load(b, "telco")
	forest := w.Forest(treegen.SmallestOfType(5))
	B := w.Set.Size() / 2
	for _, mode := range []struct {
		name string
		opts core.GreedyOptions
	}{
		{"maxML", core.GreedyOptions{TieBreakML: true}},
		{"arbitrary", core.GreedyOptions{TieBreakML: false}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var vl int
			for i := 0; i < b.N; i++ {
				r, err := core.GreedyVVSOpts(w.Set, forest, B, mode.opts)
				if err != nil {
					b.Fatal(err)
				}
				vl = r.VL
			}
			b.ReportMetric(float64(w.Set.Granularity()-vl), "retainedVars")
		})
	}
}

// BenchmarkAblationAssignment isolates hypo.AssignmentTimes overhead.
func BenchmarkAblationAssignment(b *testing.B) {
	w := load(b, "Q1")
	res, err := core.OptimalVVS(w.Set, w.Tree(treegen.SmallestOfType(1)), w.Set.Size()/2)
	if err != nil {
		b.Fatal(err)
	}
	abs := res.VVS.Apply(w.Set)
	for i := 0; i < b.N; i++ {
		hypo.AssignmentTimes(w.Set, abs, 1)
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [8]byte
	n := len(buf)
	for i > 0 {
		n--
		buf[n] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[n:])
}

// BenchmarkCompiledAppend measures the incremental-compile path: one
// Set.Add folded into the live Compiled (index and baseline patched in
// place) versus the pre-incremental invalidate-and-recompile. The set is
// re-cloned outside the timer every few thousand ops so a long -benchtime
// run cannot grow it without bound; BENCH_5.json records the same
// comparison on the full workloads via `provbench -experiment planner`.
func BenchmarkCompiledAppend(b *testing.B) {
	w := load(b, "telco")
	leafA, okA := w.Set.Vocab.Lookup("pl0")
	leafB, okB := w.Set.Vocab.Lookup("pl1")
	if !okA || !okB {
		b.Fatal("telco workload is missing pl0/pl1")
	}
	poly := provenance.NewPolynomial()
	poly.AddTerm(2, leafA)
	poly.AddTerm(3, leafA, leafB)
	for name, rebuild := range map[string]bool{"append": false, "rebuild": true} {
		b.Run(name, func(b *testing.B) {
			var set *provenance.Set
			for i := 0; i < b.N; i++ {
				if i%4096 == 0 {
					b.StopTimer()
					set = w.Set.Clone()
					c := set.Compiled()
					c.NewDeltaEval()
					c.Baseline()
					b.StartTimer()
				}
				set.Add("bench", poly)
				if rebuild {
					set.InvalidateCompiled()
				}
				set.Compiled()
			}
		})
	}
}

// BenchmarkChainedStream measures a correlated what-if stream through the
// chained batch path (delta against the previous scenario's answers)
// against the identity-baseline delta path — the Engine.Stream micro-batch
// comparison BENCH_5.json records as stream-chained vs stream-identity.
func BenchmarkChainedStream(b *testing.B) {
	w := load(b, "telco")
	compiled := w.Set.Compile()
	compiled.Baseline()
	names := make([]string, 0, 4)
	for i := 0; len(names) < 4 && i < 128; i++ {
		if _, ok := w.Set.Vocab.Lookup("pl" + itoa(i)); ok {
			names = append(names, "pl"+itoa(i))
		}
	}
	if len(names) < 4 {
		b.Fatal("telco workload has fewer than 4 leaf variables")
	}
	cur := map[string]float64{}
	for i, name := range names {
		cur[name] = 0.5 + float64(i)/8
	}
	scenarios := make([]*hypo.Scenario, 100)
	for i := range scenarios {
		cur[names[i%len(names)]] = 0.5 + float64(i%9)/8
		sc := hypo.NewScenario()
		for k, v := range cur {
			sc.Set(k, v)
		}
		scenarios[i] = sc
	}
	for name, chain := range map[string]bool{"chained": true, "identity": false} {
		opts := hypo.BatchOptions{Workers: 1, DeltaCutoff: 0.99, Chain: chain}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := hypo.EvalBatch(compiled, scenarios, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
