// The paper's running example, end to end: generate a telephony database,
// run the revenue-per-zip query through the provenance-aware engine, build
// the plan and quarter abstraction trees, compress with the optimal and
// greedy algorithms, and compare hypothetical scenarios before and after
// abstraction (Examples 1–6, 13 and 15 of the paper at benchmark scale).
package main

import (
	"fmt"
	"log"
	"time"

	"provabs"
	"provabs/internal/hypo"
	"provabs/internal/telco"
	"provabs/internal/treegen"
)

func main() {
	// Generate a telco database: customers with plans and zip codes, call
	// totals per month, plan prices parameterized by 128 plan variables and
	// 12 month variables (§4.2).
	cfg := telco.Config{Customers: 2000, Plans: 128, Months: 12, Zips: 50, Seed: 7}
	ds, err := telco.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("database: %d tuples across Cust/Calls/Plans\n", telco.TotalRows(cfg))

	// The running example's query, executed with provenance capture.
	start := time.Now()
	set, err := ds.Provenance()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query + provenance extraction: %v\n", time.Since(start))
	fmt.Printf("provenance: %d polynomials, |P|_M=%d, |P|_V=%d, %d bytes\n",
		set.Len(), set.Size(), set.Granularity(), provabs.EncodedSize(set))

	// Abstraction trees: a 2-level tree over the 128 plan variables and
	// the quarter tree over the months (Figures 2–3 scaled up).
	plansTree, err := telco.PlansTree(treegen.SmallestOfType(1))
	if err != nil {
		log.Fatal(err)
	}
	quarterTree := telco.QuarterTree()

	// Optimal single-tree compression at the paper's default bound, through
	// a single-tree session.
	B := set.Size() / 2
	plansForest, err := provabs.NewForest(plansTree)
	if err != nil {
		log.Fatal(err)
	}
	plansEng, err := provabs.Open(set, plansForest)
	if err != nil {
		log.Fatal(err)
	}
	opt, err := plansEng.Compress(B, provabs.WithStrategy(provabs.StrategyOptimal))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nAlgorithm 1 (plans tree, B=%d): %v\n", B, opt.Elapsed)
	fmt.Printf("  ML=%d VL=%d adequate=%v\n", opt.ML, opt.VL, opt.Adequate)

	// Greedy multi-tree compression over both trees — the session the rest
	// of the walkthrough keeps asking what-ifs of.
	forest, err := provabs.NewForest(plansTree, quarterTree)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := provabs.Open(set, forest)
	if err != nil {
		log.Fatal(err)
	}
	greedy, err := eng.Compress(B, provabs.WithStrategy(provabs.StrategyGreedy))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Algorithm 2 (plans + quarters, B=%d): %v\n", B, greedy.Elapsed)
	fmt.Printf("  ML=%d VL=%d adequate=%v\n", greedy.ML, greedy.VL, greedy.Adequate)

	compressed := greedy.Abstracted
	fmt.Printf("compressed: |P↓S|_M=%d, |P↓S|_V=%d, %d bytes\n",
		compressed.Size(), compressed.Granularity(), provabs.EncodedSize(compressed))

	// Scenario 1 (Example 1): "what if the ppm of all plans decreased by
	// 20% in March?" — uniform per quarter once m1..m3 move together, so if
	// the greedy grouped months by quarter the compressed provenance may
	// only support it at quarter granularity. Express it on the compressed
	// variables via projection.
	scenario := hypo.NewScenario()
	for m := 1; m <= 3; m++ {
		scenario.Set(telco.MonthVar(m), 0.8)
	}
	uniform, violation := scenario.IsUniformOn(greedy.VVS)
	fmt.Printf("\nscenario 'Q1 months -20%%': uniform on the abstraction? %v %s\n", uniform, violation)

	origVals, err := scenario.Eval(set)
	if err != nil {
		log.Fatal(err)
	}
	answers, err := eng.WhatIf(scenario.Project(greedy.VVS))
	if err != nil {
		log.Fatal(err)
	}
	absVals := make([]float64, len(answers))
	for i, a := range answers {
		absVals[i] = a.Value
	}
	relErr, err := hypo.MaxRelError(absVals, origVals)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("max relative error across %d zips: %.4g\n", len(origVals), relErr)

	// Assignment-time speedup (Figure 10's measure): evaluating scenarios
	// on the compressed provenance instead of the original.
	tOrig, tAbs := hypo.AssignmentTimes(set, compressed, 20)
	fmt.Printf("assignment time: original %v, compressed %v (speedup %.1f%%)\n",
		tOrig, tAbs, 100*hypo.Speedup(tOrig, tAbs))
}
