// Quickstart: build a provenance polynomial, define an abstraction tree,
// open a session Engine, compress, and run hypothetical scenarios — the
// minimal end-to-end tour of the public API.
package main

import (
	"fmt"
	"log"

	"provabs"
)

func main() {
	// 1. Provenance. The polynomial of Example 2: the revenue of zip code
	// 10001 parameterized by plan variables (p1, f1, y1, v) and month
	// variables (m1, m3).
	vb := provabs.NewVocab()
	set := provabs.NewSet(vb)
	set.Add("zip 10001", provabs.MustParse(vb,
		"220.8·p1·m1 + 240·p1·m3 + 127.4·f1·m1 + 114.45·f1·m3 + "+
			"75.9·y1·m1 + 72.5·y1·m3 + 42·v·m1 + 24.2·v·m3"))
	fmt.Printf("original: %d monomials over %d variables\n", set.Size(), set.Granularity())

	// 2. Abstraction tree: months may be grouped into quarter q1 (Figure 3,
	// restricted to the active months), and a session over it. The Engine
	// owns the compress-once/evaluate-many lifecycle: it caches the
	// compiled provenance across scenarios and invalidates it on mutation.
	forest, err := provabs.NewForest(provabs.MustParseTree("Year(q1(m1,m3))"))
	if err != nil {
		log.Fatal(err)
	}
	eng, err := provabs.Open(set, forest)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Compress to at most 4 monomials, keeping as many variables as
	// possible (the paper's optimization problem; StrategyAuto runs
	// Algorithm 1 on a single tree).
	comp, err := eng.Compress(4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chosen abstraction: %s (monomial loss %d, variable loss %d)\n",
		comp.VVS, comp.ML, comp.VL)
	fmt.Printf("compressed: %d monomials over %d variables\n",
		comp.Abstracted.Size(), comp.Abstracted.Granularity())
	fmt.Printf("  %s\n", comp.Abstracted.Polys[0].String(vb))

	// 4. Hypothetical reasoning: "what if prices drop 20% in the first
	// quarter?" — a single assignment to the meta-variable q1, answered
	// from the session's cached compiled provenance.
	answers, err := eng.WhatIf(provabs.NewScenario().Set("q1", 0.8))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("revenue under the Q1-discount scenario: %.2f\n", answers[0].Value)

	// The abstraction is exact for such group-uniform scenarios: the same
	// scenario expressed on the original variables agrees.
	orig, err := provabs.NewScenario().Set("m1", 0.8).Set("m3", 0.8).Eval(set)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("same scenario on the original provenance:  %.2f\n", orig[0])
}
