// Quickstart: build a provenance polynomial, define an abstraction tree,
// compress with the optimal algorithm, and run a hypothetical scenario —
// the minimal end-to-end tour of the public API.
package main

import (
	"fmt"
	"log"

	"provabs"
)

func main() {
	// 1. Provenance. The polynomial of Example 2: the revenue of zip code
	// 10001 parameterized by plan variables (p1, f1, y1, v) and month
	// variables (m1, m3).
	vb := provabs.NewVocab()
	set := provabs.NewSet(vb)
	set.Add("zip 10001", provabs.MustParse(vb,
		"220.8·p1·m1 + 240·p1·m3 + 127.4·f1·m1 + 114.45·f1·m3 + "+
			"75.9·y1·m1 + 72.5·y1·m3 + 42·v·m1 + 24.2·v·m3"))
	fmt.Printf("original: %d monomials over %d variables\n", set.Size(), set.Granularity())

	// 2. Abstraction tree: months may be grouped into quarter q1 (Figure 3,
	// restricted to the active months).
	tree := provabs.MustParseTree("Year(q1(m1,m3))")

	// 3. Compress to at most 4 monomials, keeping as many variables as
	// possible (the paper's optimization problem, Algorithm 1).
	res, err := provabs.Optimal(set, tree, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chosen abstraction: %s (monomial loss %d, variable loss %d)\n",
		res.VVS, res.ML, res.VL)
	compressed := res.VVS.Apply(set)
	fmt.Printf("compressed: %d monomials over %d variables\n",
		compressed.Size(), compressed.Granularity())
	fmt.Printf("  %s\n", compressed.Polys[0].String(vb))

	// 4. Hypothetical reasoning: "what if prices drop 20% in the first
	// quarter?" — a single assignment to the meta-variable q1.
	answers, err := provabs.NewScenario().Set("q1", 0.8).Eval(compressed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("revenue under the Q1-discount scenario: %.2f\n", answers[0])

	// The abstraction is exact for such group-uniform scenarios: the same
	// scenario expressed on the original variables agrees.
	orig, err := provabs.NewScenario().Set("m1", 0.8).Set("m3", 0.8).Eval(set)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("same scenario on the original provenance:  %.2f\n", orig[0])
}
