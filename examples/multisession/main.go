// Multi-session tour: one process hosting several provenance sessions
// through the registry, each with its own abstraction and cached
// compilation, plus the v1 HTTP API served over them — create, compress,
// what-if, per-session and aggregate stats, delete.
package main

import (
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"

	"provabs"
	"provabs/internal/server"
)

// buildSet returns a small telco-style revenue polynomial; scale lets the
// two tenants differ so their answers are distinguishable.
func buildSet(tag string, scale float64) *provabs.Set {
	vb := provabs.NewVocab()
	set := provabs.NewSet(vb)
	set.Add(tag, provabs.MustParse(vb, fmt.Sprintf(
		"%g·p1·m1 + %g·p1·m3 + %g·f1·m1 + %g·f1·m3",
		220.8*scale, 240*scale, 127.4*scale, 114.45*scale)))
	return set
}

func main() {
	// 1. A registry owns named sessions: one per tenant / provenance file.
	// The first Create designates the default session, which the legacy
	// unversioned routes alias onto.
	reg := provabs.OpenRegistry()
	forest, err := provabs.NewForest(provabs.MustParseTree("Year(q1(m1,m3))"))
	if err != nil {
		log.Fatal(err)
	}
	north, err := reg.Create("north", buildSet("zip 10001", 1), forest)
	if err != nil {
		log.Fatal(err)
	}
	south, err := reg.Create("south", buildSet("zip 73301", 2), forest)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Sessions are independent: compress one, leave the other exact.
	if _, err := north.Engine().Compress(2); err != nil {
		log.Fatal(err)
	}
	for _, sess := range reg.List() {
		st := sess.Engine().Stats()
		fmt.Printf("session %-5s compressed=%-5v monomials=%d\n",
			sess.Name(), st.Compressed, st.Monomials)
	}

	// 3. Interleaved what-ifs reuse each session's own cached compilation.
	// north answers over the quarter meta-variable; south, uncompressed,
	// sees the equivalent group-uniform per-month scenario.
	scenarios := map[string]*provabs.Scenario{
		"north": provabs.NewScenario().Set("q1", 0.8),
		"south": provabs.NewScenario().Set("m1", 0.8).Set("m3", 0.8),
	}
	for i := 0; i < 3; i++ {
		for _, sess := range reg.List() {
			answers, err := sess.Engine().WhatIf(scenarios[sess.Name()])
			if err != nil {
				log.Fatal(err)
			}
			if i == 0 {
				fmt.Printf("%s: scenario -> %.2f\n", sess.Name(), answers[0].Value)
			}
		}
	}
	agg := reg.Stats()
	fmt.Printf("aggregate: %d sessions, %d scenarios, %d compiles (one per session)\n",
		agg.Sessions, agg.Totals.Scenarios, agg.Totals.Compiles)

	// 4. The same registry over HTTP: the versioned v1 API. (A real
	// deployment runs `provabs serve -load north=... -load south=...`;
	// httptest keeps the example self-contained.)
	ts := httptest.NewServer(server.New(reg).Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/sessions/south/whatif", "application/json",
		strings.NewReader(`{"assign":{"m1":0.8,"m3":0.8}}`))
	if err != nil {
		log.Fatal(err)
	}
	body := make([]byte, 256)
	n, _ := resp.Body.Read(body)
	resp.Body.Close()
	fmt.Printf("POST /v1/sessions/south/whatif -> %s", body[:n])

	// 5. Lifecycle: deleting a session frees it and ends its streams.
	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/sessions/south", nil)
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
	}
	fmt.Printf("after DELETE: %d session(s) left, default %q\n",
		reg.Len(), reg.DefaultName())
	_ = south
}
