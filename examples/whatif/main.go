// What-if tour: the hypothetical-reasoning API across both provenance
// models — numeric scenarios over aggregate provenance (model 2) and
// semiring valuations over SPJU tuple annotations (model 1), including the
// exactness boundary of abstraction.
package main

import (
	"fmt"
	"log"

	"provabs"
	"provabs/internal/engine"
	"provabs/internal/hypo"
	"provabs/internal/provenance"
	"provabs/internal/semiring"
)

func main() {
	numericScenarios()
	semiringScenarios()
}

// numericScenarios works model 2: aggregate provenance with multiplicative
// what-ifs, and what abstraction does to them.
func numericScenarios() {
	fmt.Println("== model 2: aggregate provenance, numeric what-ifs ==")
	vb := provabs.NewVocab()
	set := provabs.NewSet(vb)
	set.Add("zip 10001", provabs.MustParse(vb,
		"220.8·p1·m1 + 240·p1·m3 + 127.4·f1·m1 + 114.45·f1·m3 + 75.9·y1·m1 + 72.5·y1·m3 + 42·v·m1 + 24.2·v·m3"))

	baseline, _ := provabs.NewScenario().Eval(set)
	fmt.Printf("baseline revenue: %.2f\n", baseline[0])

	// "Business plans +10%" — a per-plan scenario, no month change.
	up, _ := provabs.NewScenario().Set("p1", 1.1).Eval(set)
	fmt.Printf("plan A +10%%:      %.2f\n", up[0])

	// Open a session and compress months into the quarter meta-variable;
	// every what-if below reuses the Engine's cached compilation.
	forest, err := provabs.NewForest(provabs.MustParseTree("Year(q1(m1,m3))"))
	if err != nil {
		log.Fatal(err)
	}
	eng, err := provabs.Open(set, forest)
	if err != nil {
		log.Fatal(err)
	}
	comp, err := eng.Compress(4, provabs.WithStrategy(provabs.StrategyOptimal))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compressed to %d monomials with %s\n", comp.Abstracted.Size(), comp.VVS)

	// Exact: uniform per group.
	uniform := provabs.NewScenario().Set("q1", 0.8)
	cAns, _ := eng.WhatIf(uniform)
	oVals, _ := uniform.UniformOn(comp.VVS).Eval(set)
	fmt.Printf("uniform 'Q1 -20%%': compressed %.2f vs original %.2f (exact)\n", cAns[0].Value, oVals[0])

	// Approximate: January and March diverge — below the abstraction's
	// granularity. The projection uses the group mean.
	skewed := hypo.NewScenario().Set("m1", 0.6).Set("m3", 1.0)
	if ok, why := skewed.IsUniformOn(comp.VVS); !ok {
		fmt.Printf("skewed scenario is NOT supported exactly: %s\n", why)
	}
	trueVals, _ := skewed.Eval(set)
	approxAns, _ := eng.WhatIf(skewed.Project(comp.VVS))
	approxVals := make([]float64, len(approxAns))
	for i, a := range approxAns {
		approxVals[i] = a.Value
	}
	relErr, _ := hypo.MaxRelError(approxVals, trueVals)
	fmt.Printf("skewed scenario: true %.2f, via abstraction %.2f (rel. err %.3f)\n\n",
		trueVals[0], approxVals[0], relErr)
}

// semiringScenarios works model 1: SPJU queries over annotated tuples, with
// Boolean deletion what-ifs and other semirings over the same polynomial.
func semiringScenarios() {
	fmt.Println("== model 1: SPJU tuple annotations, semiring what-ifs ==")
	vb := provenance.NewVocab()
	cat := engine.NewCatalog(vb)

	claims := engine.NewRelation("claims", engine.Schema{
		{Name: "patient", Type: engine.TString}, {Name: "drug", Type: engine.TString},
	})
	claims.MustAppend(engine.Str("ann"), engine.Str("aspirin"))
	claims.MustAppend(engine.Str("bob"), engine.Str("aspirin"))
	claims.MustAppend(engine.Str("ann"), engine.Str("statin"))
	claims.AnnotateTuples(vb, func(i int) string { return fmt.Sprintf("c%d", i+1) })
	cat.AddTable(claims)

	interacts := engine.NewRelation("interacts", engine.Schema{
		{Name: "drug", Type: engine.TString}, {Name: "with", Type: engine.TString},
	})
	interacts.MustAppend(engine.Str("aspirin"), engine.Str("warfarin"))
	interacts.MustAppend(engine.Str("statin"), engine.Str("warfarin"))
	interacts.AnnotateTuples(vb, func(i int) string { return fmt.Sprintf("i%d", i+1) })
	cat.AddTable(interacts)

	// Which patients take a drug that interacts with warfarin?
	res, err := cat.ExecSQL(
		"SELECT DISTINCT claims.patient FROM claims, interacts WHERE claims.drug = interacts.drug")
	if err != nil {
		log.Fatal(err)
	}
	set, err := engine.TupleProvenance(vb, res)
	if err != nil {
		log.Fatal(err)
	}
	for i, p := range set.Polys {
		fmt.Printf("%-18s %s\n", set.Tags[i], p.String(vb))
	}

	// Boolean semiring: does ann still show up if claim c1 is deleted?
	c1, _ := vb.Lookup("c1")
	alive := func(dead provenance.Var) func(provenance.Var) bool {
		return func(v provenance.Var) bool { return v != dead }
	}
	for i := range set.Polys {
		val, err := semiring.Eval[bool](semiring.Boolean{}, set.Polys[i], alive(c1))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("delete c1: %-10s still derivable? %v\n", set.Tags[i], val)
	}

	// Tropical semiring: cheapest derivation if each tuple has a cost.
	cost := map[string]float64{"c1": 2, "c2": 1, "c3": 5, "i1": 1, "i2": 1}
	for i := range set.Polys {
		val, err := semiring.Eval[float64](semiring.Tropical{}, set.Polys[i],
			func(v provenance.Var) float64 { return cost[vb.Name(v)] })
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("tropical:  %-10s cheapest derivation cost %v\n", set.Tags[i], val)
	}

	// Counting semiring: number of derivations.
	for i := range set.Polys {
		val, err := semiring.Eval[int64](semiring.Counting{}, set.Polys[i],
			func(provenance.Var) int64 { return 1 })
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("counting:  %-10s %d derivation(s)\n", set.Tags[i], val)
	}
}
