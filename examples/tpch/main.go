// TPC-H walkthrough: generate the benchmark database, run Q1/Q5/Q10 with
// discount parameterized by supplier and part variables (the paper's §4.2
// setup), and compare the compression strategies — all routed through one
// session Engine — on Q5's provenance.
package main

import (
	"fmt"
	"log"
	"time"

	"provabs"
	"provabs/internal/abstree"
	"provabs/internal/provenance"
	"provabs/internal/tpch"
	"provabs/internal/treegen"
)

func main() {
	d, err := tpch.Generate(tpch.Config{ScaleFactor: 0.005, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TPC-H: %d suppliers, %d parts, %d customers, %d orders, %d lineitems\n",
		d.Suppliers, d.Parts, d.Customers, d.Orders, d.Lineitems)

	// Provenance shapes per query — the paper's observation that the three
	// queries stress different regimes (few huge polynomials vs very many
	// tiny ones).
	for _, q := range tpch.AllQueries {
		start := time.Now()
		set, err := d.Provenance(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-4s %4d polynomials, |P|_M=%6d, mean %7.1f monomials/poly (%v)\n",
			q, set.Len(), set.Size(), set.MeanPolySize(), time.Since(start))
	}

	// Compress Q5 with the supplier tree.
	set, err := d.Provenance(tpch.Q5)
	if err != nil {
		log.Fatal(err)
	}
	shape := treegen.SmallestOfType(1)
	stree, err := tpch.SupplierTree(shape)
	if err != nil {
		log.Fatal(err)
	}
	B := set.Size() / 2
	fmt.Printf("\ncompressing Q5 to B=%d monomials (from %d):\n", B, set.Size())

	// One session per forest; each Compress call routes a different
	// strategy through the same Engine.
	run := func(name string, eng *provabs.Engine, opts ...provabs.CompressOption) *provabs.Compression {
		comp, err := eng.Compress(B, opts...)
		if err != nil {
			fmt.Printf("  %-22s %v\n", name, err)
			return nil
		}
		note := "bound met"
		if !comp.Adequate {
			note = "bound unreachable, best effort"
		}
		fmt.Printf("  %-22s ML=%-6d VL=%-4d in %-12v (%s)\n", name, comp.ML, comp.VL, comp.Elapsed, note)
		return comp
	}
	forest := abstree.MustForest(stree)
	eng, err := provabs.Open(set, forest)
	if err != nil {
		log.Fatal(err)
	}
	opt := run("Algorithm 1 (opt)", eng, provabs.WithStrategy(provabs.StrategyOptimal))
	run("Algorithm 2 (greedy)", eng, provabs.WithStrategy(provabs.StrategyGreedy))
	run("brute force", eng, provabs.WithStrategy(provabs.StrategyBruteForce))
	run("Ainy et al. [3]", eng, provabs.WithStrategy(provabs.StrategySummarize),
		provabs.WithTimeout(30*time.Second))

	// Two-tree greedy: suppliers and parts together.
	ptree, err := tpch.PartTree(shape)
	if err != nil {
		log.Fatal(err)
	}
	bothEng, err := provabs.Open(set, abstree.MustForest(stree, ptree))
	if err != nil {
		log.Fatal(err)
	}
	run("greedy, both trees", bothEng, provabs.WithStrategy(provabs.StrategyGreedy))

	// The storage angle: bytes before and after.
	if opt != nil {
		fmt.Printf("\nshipping cost: %d bytes -> %d bytes\n",
			provenance.EncodedSize(set), provenance.EncodedSize(opt.Abstracted))
	}
}
