// TPC-H walkthrough: generate the benchmark database, run Q1/Q5/Q10 with
// discount parameterized by supplier and part variables (the paper's §4.2
// setup), and compare the three compression algorithms plus the Ainy et
// al. competitor on Q5's provenance.
package main

import (
	"fmt"
	"log"
	"time"

	"provabs/internal/abstree"
	"provabs/internal/core"
	"provabs/internal/provenance"
	"provabs/internal/summarize"
	"provabs/internal/tpch"
	"provabs/internal/treegen"
)

func main() {
	d, err := tpch.Generate(tpch.Config{ScaleFactor: 0.005, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TPC-H: %d suppliers, %d parts, %d customers, %d orders, %d lineitems\n",
		d.Suppliers, d.Parts, d.Customers, d.Orders, d.Lineitems)

	// Provenance shapes per query — the paper's observation that the three
	// queries stress different regimes (few huge polynomials vs very many
	// tiny ones).
	for _, q := range tpch.AllQueries {
		start := time.Now()
		set, err := d.Provenance(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-4s %4d polynomials, |P|_M=%6d, mean %7.1f monomials/poly (%v)\n",
			q, set.Len(), set.Size(), set.MeanPolySize(), time.Since(start))
	}

	// Compress Q5 with the supplier tree.
	set, err := d.Provenance(tpch.Q5)
	if err != nil {
		log.Fatal(err)
	}
	shape := treegen.SmallestOfType(1)
	stree, err := tpch.SupplierTree(shape)
	if err != nil {
		log.Fatal(err)
	}
	B := set.Size() / 2
	fmt.Printf("\ncompressing Q5 to B=%d monomials (from %d):\n", B, set.Size())

	run := func(name string, f func() (ml, vl int, adequate bool, err error)) {
		start := time.Now()
		ml, vl, adequate, err := f()
		if err != nil {
			fmt.Printf("  %-22s %v\n", name, err)
			return
		}
		note := "bound met"
		if !adequate {
			note = "bound unreachable, best effort"
		}
		fmt.Printf("  %-22s ML=%-6d VL=%-4d in %-12v (%s)\n", name, ml, vl, time.Since(start), note)
	}
	run("Algorithm 1 (opt)", func() (int, int, bool, error) {
		r, err := core.OptimalVVS(set, stree, B)
		if err != nil {
			return 0, 0, false, err
		}
		return r.ML, r.VL, r.Adequate, nil
	})
	forest := abstree.MustForest(stree)
	run("Algorithm 2 (greedy)", func() (int, int, bool, error) {
		r, err := core.GreedyVVS(set, forest, B)
		if err != nil {
			return 0, 0, false, err
		}
		return r.ML, r.VL, r.Adequate, nil
	})
	run("brute force", func() (int, int, bool, error) {
		r, err := core.BruteForceVVS(set, forest, B, 0)
		if err != nil {
			return 0, 0, false, err
		}
		return r.ML, r.VL, r.Adequate, nil
	})
	run("Ainy et al. [3]", func() (int, int, bool, error) {
		r, err := summarize.Summarize(set, forest, B, summarize.Options{Timeout: 30 * time.Second})
		if err != nil {
			return 0, 0, false, err
		}
		return r.ML, r.VL, r.Adequate, nil
	})

	// Two-tree greedy: suppliers and parts together.
	ptree, err := tpch.PartTree(shape)
	if err != nil {
		log.Fatal(err)
	}
	both := abstree.MustForest(stree, ptree)
	run("greedy, both trees", func() (int, int, bool, error) {
		r, err := core.GreedyVVS(set, both, B)
		if err != nil {
			return 0, 0, false, err
		}
		return r.ML, r.VL, r.Adequate, nil
	})

	// The storage angle: bytes before and after.
	opt, err := core.OptimalVVS(set, stree, B)
	if err != nil {
		log.Fatal(err)
	}
	abs := opt.VVS.Apply(set)
	fmt.Printf("\nshipping cost: %d bytes -> %d bytes\n",
		provenance.EncodedSize(set), provenance.EncodedSize(abs))
}
