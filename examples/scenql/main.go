// ScenQL tour: scenario families as single statements — grid sweeps,
// tuple products, pushed-down top-k ranking, semiring selection and
// EXPLAIN — against the paper's running telco example (Example 2).
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"os"

	"provabs"
)

func main() {
	vb := provabs.NewVocab()
	set := provabs.NewSet(vb)
	set.Add("zip 10001", provabs.MustParse(vb,
		"220.8·p1·m1 + 240·p1·m3 + 127.4·f1·m1 + 114.45·f1·m3 + 75.9·y1·m1 + 72.5·y1·m3 + 42·v·m1 + 24.2·v·m3"))
	set.Add("zip 10002", provabs.MustParse(vb,
		"90·p1·m1 + 85·f1·m3 + 30·v·m1"))
	eng, err := provabs.Open(set, nil)
	if err != nil {
		log.Fatal(err)
	}

	// One statement, 33 scenarios: how does revenue respond as plan A's
	// multiplier sweeps from shutdown to +60%, under each fiber/yearly
	// regime? CROSS pairs the two variables jointly (3 tuples, not 9).
	fmt.Println("== sweep × tuple product ==")
	res, err := eng.Query(
		"p1 IN [0:1.6:0.2] CROSS (f1,y1) IN {(1,1),(0,1),(2,0)} LIMIT 5")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d of %d scenarios (truncated=%v):\n", len(res.Rows), res.Scenarios, res.Truncated)
	for _, row := range res.Rows {
		fmt.Printf("  #%d p1=%.1f f1=%.0f y1=%.0f → %.2f\n",
			row.Index, row.Assign["p1"], row.Assign["f1"], row.Assign["y1"],
			row.Answers[0].Value)
	}

	// Ranking pushed into the engine: a streaming bounded heap keeps the
	// top 3 while the sweep runs, so a million-point grid never
	// materializes. ans['zip 10001'] addresses the answer by tag.
	fmt.Println("== pushed-down top-k ==")
	res, err = eng.Query(
		"p1 IN [0:2:0.05] v IN [0:2:0.25] ORDER BY ans['zip 10001'] DESC LIMIT 3")
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range res.Rows {
		fmt.Printf("  #%d p1=%.2f v=%.2f → %.2f\n",
			row.Index, row.Assign["p1"], row.Assign["v"], row.Answers[0].Value)
	}

	// Deletion propagation in the same language: USING bool asks which
	// answers survive each deletion pattern (0 = delete, 1 = keep). The
	// boolean carrier reads provenance strictly as N[X], so it runs on a
	// natural-coefficient set (the paper set's fractional revenues would
	// answer per-row errors here).
	fmt.Println("== USING bool: deletion propagation ==")
	nvb := provabs.NewVocab()
	nset := provabs.NewSet(nvb)
	nset.Add("q1", provabs.MustParse(nvb, "2·p1·m1 + 3·f1·m1"))
	nset.Add("q2", provabs.MustParse(nvb, "p1·m3"))
	neng, err := provabs.Open(nset, nil)
	if err != nil {
		log.Fatal(err)
	}
	res, err = neng.Query("CROSS (p1,f1) IN {(0,1),(1,0),(0,0)} USING bool")
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range res.Rows {
		fmt.Printf("  delete p1=%v f1=%v: q1 survives=%v q2 survives=%v\n",
			row.Assign["p1"] == 0, row.Assign["f1"] == 0,
			row.Answers[0].Value, row.Answers[1].Value)
	}

	// EXPLAIN returns the plan instead of running it: the generator tree,
	// scenario classes and the engine's routing decisions (delta vs
	// chained vs full, with the live cost model once the session has
	// history).
	fmt.Println("== EXPLAIN ==")
	res, err = eng.Query("EXPLAIN p1 IN [0:2:0.05] v IN [0:2:0.25] ORDER BY ans[0] DESC LIMIT 3")
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res.Explain); err != nil {
		log.Fatal(err)
	}

	// The same sweep as a stream: rows arrive as they are evaluated
	// (chained deltas between adjacent scenarios), bounded memory.
	fmt.Println("== streaming ==")
	info, rows, err := eng.QueryStream(context.Background(), "m1 IN [0.5:1.5:0.5] SET m3=1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streaming %d scenarios in the %s semiring:\n", info.Scenarios, info.Semiring)
	for row := range rows {
		fmt.Printf("  m1=%.1f → %.2f\n", row.Assign["m1"], row.Answers[0].Value)
	}
}
