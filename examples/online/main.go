// Online compression (§6): choose the abstraction on a sample of the
// provenance and apply it to the full expression, sidestepping the cost of
// materializing everything before compressing. Demonstrates the two §6
// heuristics — bound adaptation and size extrapolation — and measures the
// quality cost of sampling.
package main

import (
	"fmt"
	"log"

	"provabs"
	"provabs/internal/abstree"
	"provabs/internal/sampling"
	"provabs/internal/telco"
	"provabs/internal/treegen"
)

func main() {
	set, err := telco.SyntheticProvenance(telco.Config{
		Customers: 3000, Plans: 128, Months: 12, Zips: 120, Seed: 13,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full provenance: %d polynomials, |P|_M=%d, |P|_V=%d\n",
		set.Len(), set.Size(), set.Granularity())

	plansTree, err := telco.PlansTree(treegen.Shape{Fanouts: []int{8, 16}})
	if err != nil {
		log.Fatal(err)
	}
	forest := abstree.MustForest(plansTree, telco.QuarterTree())
	B := set.Size() / 2

	// One session hosts the whole sweep; each Compress replaces the
	// previous abstraction.
	eng, err := provabs.Open(set, forest)
	if err != nil {
		log.Fatal(err)
	}

	// Offline reference: greedy on the full set.
	offline, err := eng.Compress(B, provabs.WithStrategy(provabs.StrategyGreedy))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offline greedy: ML=%d VL=%d adequate=%v\n", offline.ML, offline.VL, offline.Adequate)

	// Online: pick the VVS on increasingly small samples.
	for _, fraction := range []float64{0.5, 0.25, 0.1} {
		comp, err := eng.Compress(B,
			provabs.WithStrategy(provabs.StrategyOnline),
			provabs.WithSamplingFraction(fraction),
			provabs.WithSeed(2))
		if err != nil {
			log.Fatal(err)
		}
		res := comp.Extra.(*sampling.Result)
		fmt.Printf("online %3.0f%% sample: sample |P|_M=%-6d adapted B=%-6d full adequate=%-5v |P↓S|_V=%d\n",
			fraction*100, res.SampleSize, res.SampleBound, res.FullAdequate,
			comp.Abstracted.Granularity())
	}

	// §6's other gap: estimating the full provenance size from growing
	// samples (needed to adapt the bound when the full size is unknown).
	points, err := sampling.MeasureGrowth(set, []float64{0.1, 0.2, 0.4}, 5)
	if err != nil {
		log.Fatal(err)
	}
	for _, pt := range points {
		fmt.Printf("sample %3.0f%% -> |P|_M=%d\n", pt.Fraction*100, pt.Size)
	}
	est, err := sampling.EstimateFullSize(points)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("extrapolated full size: %d (actual %d, error %+.1f%%)\n",
		est, set.Size(), 100*float64(est-set.Size())/float64(set.Size()))
}
